package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableASCII(t *testing.T) {
	tb := NewTable("Demo", "a", "long-column", "c")
	tb.AddRow("1", "2", "3")
	tb.AddRow("xx", "yy", "zz")
	out := tb.ASCII()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "long-column") {
		t.Fatalf("ASCII output missing pieces:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	// Header and row columns align.
	if strings.Index(lines[1], "long-column") != strings.Index(lines[3], "2") {
		t.Fatalf("columns not aligned:\n%s", out)
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row accepted")
		}
	}()
	tb.AddRow("only-one")
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "with,comma")
	tb.AddRow("2", `with"quote`)
	out := tb.CSV()
	if !strings.Contains(out, `"with,comma"`) {
		t.Fatalf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Fatalf("quote cell not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("header wrong: %s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("MD", "x", "y")
	tb.AddRow("1", "2")
	out := tb.Markdown()
	if !strings.Contains(out, "| x | y |") || !strings.Contains(out, "|---|---|") {
		t.Fatalf("markdown shape wrong:\n%s", out)
	}
}

func TestF(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Fatal("F rounding wrong")
	}
	if F(math.NaN(), 2) != "NaN" || F(math.Inf(1), 1) != "Inf" {
		t.Fatal("F special values wrong")
	}
}

func TestFigureCSV(t *testing.T) {
	var f Figure
	f.AddSeries("s1", []float64{0, 1}, []float64{10, 20})
	f.AddSeries("s2", []float64{0, 1}, []float64{30, 40})
	out := f.CSV()
	want := "x,s1,s2\n0,10,30\n1,20,40\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestFigureCSVDisjointX(t *testing.T) {
	var f Figure
	f.AddSeries("a", []float64{0}, []float64{1})
	f.AddSeries("b", []float64{1}, []float64{2})
	out := f.CSV()
	if !strings.Contains(out, "0,1,\n") || !strings.Contains(out, "1,,2\n") {
		t.Fatalf("disjoint-x CSV wrong:\n%s", out)
	}
}

func TestFigureSeriesValidation(t *testing.T) {
	var f Figure
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series accepted")
		}
	}()
	f.AddSeries("bad", []float64{1, 2}, []float64{1})
}

func TestFigureSeriesCopiesData(t *testing.T) {
	var f Figure
	x := []float64{1}
	f.AddSeries("s", x, []float64{2})
	x[0] = 99
	if f.Series[0].X[0] != 1 {
		t.Fatal("series aliased caller slice")
	}
}

func TestASCIIChart(t *testing.T) {
	var f Figure
	f.Title = "Chart"
	f.XLabel = "time"
	f.YLabel = "value"
	f.AddSeries("up", []float64{0, 1, 2}, []float64{0, 1, 2})
	f.AddSeries("down", []float64{0, 1, 2}, []float64{2, 1, 0})
	out := f.ASCIIChart(40, 10)
	for _, want := range []string{"Chart", "*", "o", "up", "down", "time", "value"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Rising series: '*' appears in both the bottom-left and top-right
	// regions; spot-check the extremes map to opposite corners.
	lines := strings.Split(out, "\n")
	top := lines[1]
	if !strings.Contains(top, "*") && !strings.Contains(top, "o") {
		t.Fatalf("no marker on top row:\n%s", out)
	}
}

func TestASCIIChartEmptyFigure(t *testing.T) {
	var f Figure
	if got := f.ASCIIChart(40, 10); !strings.Contains(got, "empty") {
		t.Fatalf("empty figure rendered: %q", got)
	}
}

func TestASCIIChartConstantSeries(t *testing.T) {
	var f Figure
	f.AddSeries("flat", []float64{0, 1}, []float64{5, 5})
	out := f.ASCIIChart(30, 6)
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series not drawn:\n%s", out)
	}
}

func TestSortFloats(t *testing.T) {
	xs := []float64{3, 1, 2}
	sortFloats(xs)
	if xs[0] != 1 || xs[1] != 2 || xs[2] != 3 {
		t.Fatalf("sortFloats = %v", xs)
	}
}
