// Package sensornode extends the paper's CPU model to a whole sensor node —
// the object the paper's motivation section reasons about. A node couples
// the Figure-3 CPU net with a duty-cycled radio: every completed CPU job
// emits a packet that the radio transmits, and the radio periodically wakes
// from sleep to listen for traffic. The composite model is a single Petri
// net, demonstrating the compositionality the paper claims for Petri-net
// modeling ("any changes to the model can be made easily").
package sensornode

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/energy"
	"repro/internal/petri"
)

// Radio place and transition names.
const (
	PlaceRadioSleep  = "Radio_Sleep"
	PlaceRadioTx     = "Radio_Tx"
	PlaceRadioListen = "Radio_Listen"
	PlaceTxQueue     = "Tx_Queue"

	TransTxStart    = "Tx_Start"
	TransTxDone     = "Tx_Done"
	TransListenBeat = "Listen_Beat"
	TransListenDone = "Listen_Done"
)

// RadioPower is a per-state radio power table in milliwatts. The default
// values are CC2420-class magnitudes at 3 V (illustrative, not from the
// paper).
type RadioPower struct {
	SleepMW, TxMW, ListenMW float64
}

// CC2420 is a representative 802.15.4 radio power table.
var CC2420 = RadioPower{SleepMW: 0.06, TxMW: 52.2, ListenMW: 56.4}

// Config describes a sensor node.
type Config struct {
	// CPU is the paper's processor model configuration.
	CPU core.Config
	// TxTime is the radio transmit time per packet in seconds.
	TxTime float64
	// ListenPeriod and ListenWindow configure duty-cycled listening: the
	// radio wakes ListenPeriod seconds after last falling asleep and
	// listens for ListenWindow seconds.
	ListenPeriod, ListenWindow float64
	// Radio is the radio power table.
	Radio RadioPower
	// Battery supplies the node; used for lifetime estimation.
	Battery energy.Battery
}

// DefaultConfig returns a Mica-class node running the paper's CPU workload.
func DefaultConfig() Config {
	return Config{
		CPU:          core.PaperConfig(),
		TxTime:       0.01,
		ListenPeriod: 1.0,
		ListenWindow: 0.05,
		Radio:        CC2420,
		Battery:      energy.AA2850,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	if c.TxTime <= 0 {
		return fmt.Errorf("sensornode: TxTime must be positive, got %v", c.TxTime)
	}
	if c.ListenPeriod <= 0 || c.ListenWindow <= 0 {
		return fmt.Errorf("sensornode: listen period/window must be positive, got %v/%v", c.ListenPeriod, c.ListenWindow)
	}
	if c.Radio.SleepMW < 0 || c.Radio.TxMW <= 0 || c.Radio.ListenMW <= 0 {
		return fmt.Errorf("sensornode: invalid radio power table %+v", c.Radio)
	}
	if c.Battery.CapacitymAh <= 0 || c.Battery.Volts <= 0 {
		return fmt.Errorf("sensornode: invalid battery %+v", c.Battery)
	}
	return nil
}

// BuildNodeNet composes the Figure-3 CPU net with the radio subnet:
//
//   - each SR firing (job completion) also deposits a packet in Tx_Queue;
//   - Tx_Start (immediate) grabs the sleeping radio when a packet waits;
//   - Tx_Done (deterministic TxTime) returns the radio to sleep;
//   - Listen_Beat (deterministic ListenPeriod, race-enable) periodically
//     moves the sleeping radio to Radio_Listen for ListenWindow seconds.
//
// The radio carries the P-invariant
// M(Radio_Sleep) + M(Radio_Tx) + M(Radio_Listen) = 1.
func BuildNodeNet(cfg Config) *petri.Net {
	n := core.BuildCPUNet(cfg.CPU)
	n.Name = "sensor-node"

	sleep := n.AddPlaceInit(PlaceRadioSleep, 1)
	tx := n.AddPlace(PlaceRadioTx)
	listen := n.AddPlace(PlaceRadioListen)
	txq := n.AddPlace(PlaceTxQueue)

	// Couple the CPU to the radio: every service completion queues one
	// packet.
	sr, ok := n.TransitionByName(core.TransSR)
	if !ok {
		panic("sensornode: CPU net lost its SR transition")
	}
	n.Output(sr, txq, 1)

	txStart := n.AddImmediate(TransTxStart, 5)
	n.Input(txStart, txq, 1)
	n.Input(txStart, sleep, 1)
	n.Output(txStart, tx, 1)

	txDone := n.AddTimed(TransTxDone, dist.NewDeterministic(cfg.TxTime))
	n.Input(txDone, tx, 1)
	n.Output(txDone, sleep, 1)

	listenBeat := n.AddTimed(TransListenBeat, dist.NewDeterministic(cfg.ListenPeriod))
	n.Input(listenBeat, sleep, 1)
	n.Output(listenBeat, listen, 1)
	// Pending packets postpone the listen window; transmission has
	// priority over idle listening.
	n.Inhibitor(listenBeat, txq, 1)

	listenDone := n.AddTimed(TransListenDone, dist.NewDeterministic(cfg.ListenWindow))
	n.Input(listenDone, listen, 1)
	n.Output(listenDone, sleep, 1)

	return n
}

// Result is the outcome of a node-level energy analysis.
type Result struct {
	// CPUFractions are the processor state shares.
	CPUFractions energy.Fractions
	// RadioSleep, RadioTx, RadioListen are the radio state shares.
	RadioSleep, RadioTx, RadioListen float64
	// CPUAvgMW, RadioAvgMW and TotalAvgMW are average power draws.
	CPUAvgMW, RadioAvgMW, TotalAvgMW float64
	// PacketsPerSecond is the radio transmit throughput.
	PacketsPerSecond float64
	// LifetimeSeconds is the battery lifetime at TotalAvgMW.
	LifetimeSeconds float64
}

// LifetimeDays converts the lifetime to days.
func (r *Result) LifetimeDays() float64 { return r.LifetimeSeconds / 86400 }

// Estimate simulates the composite net and returns node-level power,
// throughput and lifetime.
func Estimate(cfg Config, reps int) (*Result, error) {
	return EstimateContext(context.Background(), cfg, reps)
}

// EstimateContext is Estimate with cooperative cancellation: a cancelled
// context aborts the composite-net replications mid-simulation with an
// error wrapping ctx.Err().
func EstimateContext(ctx context.Context, cfg Config, reps int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if reps < 1 {
		reps = 5
	}
	n := BuildNodeNet(cfg)
	rep, err := petri.SimulateReplicationsContext(ctx, n, petri.SimOptions{
		Seed:     cfg.CPU.Seed,
		Warmup:   cfg.CPU.Warmup,
		Duration: cfg.CPU.SimTime,
	}, reps)
	if err != nil {
		return nil, err
	}
	avg := func(name string) float64 {
		id, ok := n.PlaceByName(name)
		if !ok {
			panic(fmt.Sprintf("sensornode: missing place %q", name))
		}
		return rep.PlaceAvg[id].Mean()
	}
	res := &Result{
		RadioSleep:  avg(PlaceRadioSleep),
		RadioTx:     avg(PlaceRadioTx),
		RadioListen: avg(PlaceRadioListen),
	}
	res.CPUFractions[energy.Standby] = avg(core.PlaceStandBy)
	res.CPUFractions[energy.PowerUp] = avg(core.PlacePowerUp)
	res.CPUFractions[energy.Idle] = avg(core.PlaceIdle)
	res.CPUFractions[energy.Active] = avg(core.PlaceActive)

	res.CPUAvgMW = cfg.CPU.Power.AveragePowerMW(res.CPUFractions)
	res.RadioAvgMW = res.RadioSleep*cfg.Radio.SleepMW +
		res.RadioTx*cfg.Radio.TxMW +
		res.RadioListen*cfg.Radio.ListenMW
	res.TotalAvgMW = res.CPUAvgMW + res.RadioAvgMW

	txDoneID, ok := n.TransitionByName(TransTxDone)
	if !ok {
		panic("sensornode: missing Tx_Done")
	}
	res.PacketsPerSecond = rep.Throughput[txDoneID].Mean()
	res.LifetimeSeconds = cfg.Battery.LifetimeSeconds(res.TotalAvgMW)
	if math.IsNaN(res.LifetimeSeconds) {
		return nil, fmt.Errorf("sensornode: lifetime is NaN (total %v mW)", res.TotalAvgMW)
	}
	return res, nil
}
