package sensornode

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/petri"
	"repro/internal/xrand"
)

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.CPU.SimTime = 2000
	cfg.CPU.Warmup = 100
	cfg.CPU.Replications = 4
	return cfg
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.CPU.Lambda = 0 },
		func(c *Config) { c.TxTime = 0 },
		func(c *Config) { c.ListenPeriod = 0 },
		func(c *Config) { c.ListenWindow = -1 },
		func(c *Config) { c.Radio.TxMW = 0 },
		func(c *Config) { c.Battery.CapacitymAh = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNodeNetStructure(t *testing.T) {
	n := BuildNodeNet(DefaultConfig())
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// 9 CPU places + 4 radio places.
	if len(n.Places) != 13 {
		t.Fatalf("places = %d, want 13", len(n.Places))
	}
	// 8 CPU transitions + 4 radio transitions.
	if len(n.Transitions) != 12 {
		t.Fatalf("transitions = %d, want 12", len(n.Transitions))
	}
}

// TestRadioInvariant: the radio state places always hold exactly one token
// among them, checked dynamically over random firings.
func TestRadioInvariant(t *testing.T) {
	n := BuildNodeNet(DefaultConfig())
	sleepID, _ := n.PlaceByName(PlaceRadioSleep)
	txID, _ := n.PlaceByName(PlaceRadioTx)
	listenID, _ := n.PlaceByName(PlaceRadioListen)
	m := n.InitialMarking()
	r := xrand.New(4)
	for step := 0; step < 3000; step++ {
		var enabled []petri.TransitionID
		for ti := range n.Transitions {
			if n.Enabled(m, petri.TransitionID(ti)) {
				enabled = append(enabled, petri.TransitionID(ti))
			}
		}
		if len(enabled) == 0 {
			t.Fatalf("node net deadlocked at step %d", step)
		}
		n.Fire(m, enabled[r.Intn(len(enabled))])
		if got := m[sleepID] + m[txID] + m[listenID]; got != 1 {
			t.Fatalf("radio invariant broke at step %d: %d tokens", step, got)
		}
	}
}

// TestRadioInvariantStructural: the radio conservation law is found by the
// invariant computation, not only dynamically.
func TestRadioInvariantStructural(t *testing.T) {
	n := BuildNodeNet(DefaultConfig())
	invs, err := petri.PInvariants(n)
	if err != nil {
		t.Fatal(err)
	}
	sleepID, _ := n.PlaceByName(PlaceRadioSleep)
	txID, _ := n.PlaceByName(PlaceRadioTx)
	listenID, _ := n.PlaceByName(PlaceRadioListen)
	for _, y := range invs {
		if y[sleepID] == 1 && y[txID] == 1 && y[listenID] == 1 {
			nonRadio := 0
			for p, v := range y {
				if v != 0 && p != int(sleepID) && p != int(txID) && p != int(listenID) {
					nonRadio++
				}
			}
			if nonRadio == 0 {
				return // found the pure radio invariant
			}
		}
	}
	t.Fatalf("radio P-invariant not found in %v", invs)
}

func TestEstimate(t *testing.T) {
	res, err := Estimate(quickConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Radio shares form a distribution.
	if s := res.RadioSleep + res.RadioTx + res.RadioListen; math.Abs(s-1) > 1e-6 {
		t.Fatalf("radio shares sum to %v", s)
	}
	if err := res.CPUFractions.Validate(1e-6); err != nil {
		t.Fatal(err)
	}
	// Every job becomes a packet: tx throughput == lambda.
	if math.Abs(res.PacketsPerSecond-1) > 0.05 {
		t.Fatalf("packet rate = %v, want ~1 (lambda)", res.PacketsPerSecond)
	}
	// Radio tx share = lambda * TxTime.
	if math.Abs(res.RadioTx-0.01) > 0.005 {
		t.Fatalf("radio tx share = %v, want ~0.01", res.RadioTx)
	}
	if res.TotalAvgMW <= 0 || res.LifetimeSeconds <= 0 {
		t.Fatal("non-positive power or lifetime")
	}
	if res.TotalAvgMW < res.CPUAvgMW || res.TotalAvgMW < res.RadioAvgMW {
		t.Fatal("total power less than a component")
	}
	if math.Abs(res.LifetimeDays()-res.LifetimeSeconds/86400) > 1e-9 {
		t.Fatal("LifetimeDays inconsistent")
	}
}

// TestLifetimeDropsWithLoad: more arrivals -> more active CPU and more
// packets -> shorter life.
func TestLifetimeDropsWithLoad(t *testing.T) {
	light := quickConfig()
	light.CPU.Lambda = 0.2
	heavy := quickConfig()
	heavy.CPU.Lambda = 4
	lr, err := Estimate(light, 3)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := Estimate(heavy, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hr.LifetimeSeconds >= lr.LifetimeSeconds {
		t.Fatalf("lifetime did not drop with load: light %v vs heavy %v",
			lr.LifetimeSeconds, hr.LifetimeSeconds)
	}
}

// TestListenDutyCycleShare: with light traffic the listen share approaches
// Window / (Period + Window).
func TestListenDutyCycleShare(t *testing.T) {
	cfg := quickConfig()
	cfg.CPU.Lambda = 0.01 // nearly idle
	cfg.CPU.Mu = 10
	cfg.ListenPeriod = 1
	cfg.ListenWindow = 0.25
	res, err := Estimate(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.25 / 1.25
	if math.Abs(res.RadioListen-want) > 0.02 {
		t.Fatalf("listen share = %v, want ~%v", res.RadioListen, want)
	}
}

func TestEstimateRejectsInvalid(t *testing.T) {
	cfg := quickConfig()
	cfg.TxTime = -1
	if _, err := Estimate(cfg, 2); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestNodeEnergyDominatedByCPUForPXA271(t *testing.T) {
	// With a PXA271 (tens of mW even in standby=17mW) and a mostly
	// sleeping radio, CPU power dominates the budget at the paper's load.
	res, err := Estimate(quickConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPUAvgMW <= res.RadioAvgMW {
		t.Fatalf("expected CPU-dominated budget, got CPU %v mW vs radio %v mW",
			res.CPUAvgMW, res.RadioAvgMW)
	}
	_ = energy.PXA271
}

func TestCPUSubnetUnaffectedByRadio(t *testing.T) {
	// Attaching the radio must not change CPU-side behaviour: compare the
	// CPU fractions of the composite net against the plain CPU net.
	cfg := quickConfig()
	nodeRes, err := Estimate(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	cpuEst, err := core.PetriNet{}.Estimate(cfg.CPU)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range energy.States {
		if d := math.Abs(nodeRes.CPUFractions[s] - cpuEst.Fractions[s]); d > 0.03 {
			t.Fatalf("state %s: node %v vs cpu-only %v", s, nodeRes.CPUFractions[s], cpuEst.Fractions[s])
		}
	}
}
