package shard

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// RunShard evaluates one shard's scenarios with the given Runner and
// returns the worker's ResultSet, with every result re-tagged to its
// global batch index. Any scenario failure (including a deadline skip)
// fails the whole shard: merge needs complete shards.
func RunShard(ctx context.Context, r *core.Runner, s Shard) (*ResultSet, error) {
	scenarios := make([]core.Scenario, len(s.Items))
	for i, it := range s.Items {
		scenarios[i] = it.Scenario()
	}
	results, err := r.RunAll(ctx, scenarios)
	if err != nil {
		return nil, fmt.Errorf("shard: running shard %d: %w", s.Index, err)
	}
	for i := range results {
		results[i].Index = s.Items[i].Index
	}
	return NewResultSet(s.Index, results)
}

// ResultSetVersion is the schema version of the worker result JSON.
const ResultSetVersion = 1

// ResultItem is one completed scenario as serialized by a worker.
// Estimates are stored by value; encoding/json round-trips every float64
// exactly (shortest-representation encoding), which is what keeps a
// merged sweep bit-identical to a single-process one.
type ResultItem struct {
	// Index is the scenario's global position in the batch.
	Index int `json:"index"`
	// Name echoes the scenario name.
	Name string `json:"name,omitempty"`
	// Config echoes the scenario configuration, so merged Results carry
	// the full Scenario the core.Result contract documents.
	Config core.Config `json:"config"`
	// Seed is the effective seed the scenario ran with.
	Seed uint64 `json:"seed"`
	// Estimates holds one result per estimator, in the spec's method
	// order.
	Estimates []core.Estimate `json:"estimates"`
}

// ResultSet is the JSON document one worker writes after finishing its
// shard.
type ResultSet struct {
	// Version is ResultSetVersion at write time.
	Version int `json:"version"`
	// ShardIndex identifies which shard of the plan produced this set.
	ShardIndex int `json:"shard_index"`
	// Results lists the shard's completed scenarios.
	Results []ResultItem `json:"results"`
}

// NewResultSet converts a completed shard's Runner results into the wire
// shape. Every result must be a success: a failed or skipped scenario has
// no estimates to merge, so the worker must fail instead of writing a
// partial set.
func NewResultSet(shardIndex int, results []core.Result) (*ResultSet, error) {
	rs := &ResultSet{Version: ResultSetVersion, ShardIndex: shardIndex}
	for _, res := range results {
		if res.Err != nil {
			return nil, fmt.Errorf("shard: scenario %d failed, refusing to serialize a partial shard: %w", res.Index, res.Err)
		}
		ests := make([]core.Estimate, len(res.Estimates))
		for i, e := range res.Estimates {
			ests[i] = *e
		}
		rs.Results = append(rs.Results, ResultItem{
			Index:     res.Index,
			Name:      res.Scenario.Name,
			Config:    res.Scenario.Config,
			Seed:      res.Seed,
			Estimates: ests,
		})
	}
	return rs, nil
}

// WriteResultSet writes the set as indented JSON.
func WriteResultSet(path string, rs *ResultSet) error {
	return writeJSON(path, rs)
}

// ReadResultSet reads one worker output.
func ReadResultSet(path string) (*ResultSet, error) {
	var rs ResultSet
	if err := readJSON(path, &rs); err != nil {
		return nil, fmt.Errorf("shard: reading result set %s: %w", path, err)
	}
	if rs.Version != ResultSetVersion {
		return nil, fmt.Errorf("shard: result set %s has version %d, want %d", path, rs.Version, ResultSetVersion)
	}
	return &rs, nil
}

// Merge reassembles worker result sets into the plan's results in input
// order. It detects the ways a sharded run can lie: a scenario reported
// by no shard (incomplete), a scenario reported by two shards with
// differing content (conflict — with content-derived seeding a duplicated
// scenario must be bit-identical, so a mismatch means the workers ran
// different code or different plans; identical duplicates are tolerated),
// an index outside the batch, and a result whose scenario does not match
// what the plan assigned to that index (a stale or foreign result set
// from a different plan must not merge silently into a wrong artifact).
func Merge(m *Manifest, sets []*ResultSet) ([]core.Result, error) {
	total := m.Total
	planned := make(map[int]Item, total)
	for _, s := range m.Shards {
		for _, it := range s.Items {
			planned[it.Index] = it
		}
	}
	byIndex := make(map[int]ResultItem, total)
	owner := make(map[int]int, total) // scenario index -> shard that reported it
	for _, rs := range sets {
		for _, item := range rs.Results {
			if item.Index < 0 || item.Index >= total {
				return nil, fmt.Errorf("shard: shard %d reports scenario %d outside batch of %d", rs.ShardIndex, item.Index, total)
			}
			if want, ok := planned[item.Index]; ok && (item.Name != want.Name || item.Config != want.Config) {
				return nil, fmt.Errorf("shard: shard %d reports a different scenario %d than the plan assigned (stale result set from another plan?)",
					rs.ShardIndex, item.Index)
			}
			if prev, dup := byIndex[item.Index]; dup {
				if !resultItemsEqual(prev, item) {
					return nil, fmt.Errorf("shard: conflicting results for scenario %d from shards %d and %d",
						item.Index, owner[item.Index], rs.ShardIndex)
				}
				continue
			}
			byIndex[item.Index] = item
			owner[item.Index] = rs.ShardIndex
		}
	}
	if len(byIndex) != total {
		missing := make([]int, 0, total-len(byIndex))
		for i := 0; i < total; i++ {
			if _, ok := byIndex[i]; !ok {
				missing = append(missing, i)
			}
		}
		return nil, &IncompleteError{Total: total, Missing: missing}
	}
	// Placement into out is positional and coverage of 0..total-1 was
	// just verified, so plain map iteration order suffices.
	out := make([]core.Result, total)
	for i, item := range byIndex {
		ests := make([]*core.Estimate, len(item.Estimates))
		for j := range item.Estimates {
			e := item.Estimates[j]
			ests[j] = &e
		}
		out[i] = core.Result{
			Index:     i,
			Scenario:  core.Scenario{Name: item.Name, Config: item.Config},
			Seed:      item.Seed,
			Estimates: ests,
		}
	}
	return out, nil
}

// IncompleteError is the gap report Merge returns when the result sets do
// not cover the plan: exactly which global scenario indices no shard
// reported. A coordinator recovering from a worker crash feeds Missing
// straight into Replan; because re-planning only ever covers these indices,
// completed scenarios are never re-run and the recovered merge is
// byte-identical to an uninterrupted one.
type IncompleteError struct {
	// Total is the plan's scenario count.
	Total int
	// Missing lists the unreported global indices in increasing order.
	Missing []int
}

// Error implements error. The message shows at most 8 indices so a huge
// gap does not flood logs; the full list is in Missing.
func (e *IncompleteError) Error() string {
	shown := e.Missing
	suffix := ""
	if len(shown) > 8 {
		shown, suffix = shown[:8], "..."
	}
	return fmt.Sprintf("shard: merge incomplete: %d of %d scenarios reported (missing %v%s)",
		e.Total-len(e.Missing), e.Total, shown, suffix)
}

// Missing returns the sorted global indices of the plan that no result set
// covers — the exact re-run set after worker loss. Unlike Merge it does not
// validate the sets' contents; it only measures coverage, so a coordinator
// can track gaps incrementally while results stream in.
func Missing(m *Manifest, sets []*ResultSet) []int {
	covered := make(map[int]bool, m.Total)
	for _, rs := range sets {
		for _, item := range rs.Results {
			if item.Index >= 0 && item.Index < m.Total {
				covered[item.Index] = true
			}
		}
	}
	missing := make([]int, 0, m.Total-len(covered))
	for i := 0; i < m.Total; i++ {
		if !covered[i] {
			missing = append(missing, i)
		}
	}
	return missing
}

// MissingFrom returns the sorted global indices of the plan that the
// covered set does not contain — the exact re-run set for a coordinator
// that tracks coverage incrementally (or reconstructs it from a journal
// after a restart) instead of holding worker result sets. Feed the result
// to Replan to rebuild the work queue from recovered state.
func (m *Manifest) MissingFrom(covered map[int]bool) []int {
	missing := make([]int, 0, m.Total-len(covered))
	for i := 0; i < m.Total; i++ {
		if !covered[i] {
			missing = append(missing, i)
		}
	}
	return missing
}

// Replan partitions exactly the given missing scenario indices of a plan
// into up to n fresh shards (indexed 0..n-1 within the returned slice) —
// the crash-recovery step: a lease that expired or a merge that reported
// gaps re-enters the queue as these shards. Items are copied verbatim from
// the manifest, so the re-run scenarios carry identical configurations
// and, with content-derived seeding, produce results byte-identical to
// what the lost worker would have reported. Indices outside the plan or
// not assigned by it are rejected; duplicates collapse.
func Replan(m *Manifest, missing []int, n int) ([]Shard, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: replan needs at least 1 shard, got %d", n)
	}
	planned := make(map[int]Item, m.Total)
	for _, s := range m.Shards {
		for _, it := range s.Items {
			planned[it.Index] = it
		}
	}
	seen := make(map[int]bool, len(missing))
	scenarios := make([]core.Scenario, 0, len(missing))
	order := make([]Item, 0, len(missing))
	for _, idx := range missing {
		if idx < 0 || idx >= m.Total {
			return nil, fmt.Errorf("shard: replan index %d outside batch of %d", idx, m.Total)
		}
		it, ok := planned[idx]
		if !ok {
			return nil, fmt.Errorf("shard: replan index %d is not assigned by the plan", idx)
		}
		if seen[idx] {
			continue
		}
		seen[idx] = true
		order = append(order, it)
		scenarios = append(scenarios, it.Scenario())
	}
	shards, err := Plan(scenarios, n)
	if err != nil {
		return nil, err
	}
	// Plan tagged items with positions inside the missing list; restore the
	// global batch indices from the manifest's items.
	for si := range shards {
		for ii := range shards[si].Items {
			shards[si].Items[ii] = order[shards[si].Items[ii].Index]
		}
	}
	return shards, nil
}

// resultItemsEqual compares two reports of the same scenario field by
// field. Estimate and Config are flat value structs, so == is exact.
func resultItemsEqual(a, b ResultItem) bool {
	if a.Index != b.Index || a.Name != b.Name || a.Config != b.Config ||
		a.Seed != b.Seed || len(a.Estimates) != len(b.Estimates) {
		return false
	}
	for i := range a.Estimates {
		if a.Estimates[i] != b.Estimates[i] {
			return false
		}
	}
	return true
}
