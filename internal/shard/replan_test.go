package shard

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"repro/internal/core"
)

// weightByPDT is a deterministic synthetic cost model for the planning
// tests: cost grows with the scenario's PDT, so a sorted sweep grid has
// its expensive points clustered at one end — the case count balancing
// handles worst.
func weightByPDT(s core.Scenario) float64 { return 1 + 10*s.Config.PDT }

// TestPlanWeightedProperty: for a range of batch sizes and shard counts,
// a weighted plan must cover every scenario exactly once, in order, be
// deterministic, and balance total weight better than the worst shard
// carrying everything.
func TestPlanWeightedProperty(t *testing.T) {
	for _, total := range []int{0, 1, 2, 3, 7, 11, 33} {
		for _, n := range []int{1, 2, 3, 5, 8, 40} {
			scenarios := grid(total)
			shards, err := PlanWeighted(scenarios, n, weightByPDT)
			if err != nil {
				t.Fatalf("total=%d n=%d: %v", total, n, err)
			}
			if len(shards) != n {
				t.Fatalf("total=%d n=%d: %d shards", total, n, len(shards))
			}
			next := 0
			totalW := 0.0
			maxW := 0.0
			for i, s := range shards {
				if s.Index != i {
					t.Fatalf("shard %d has index %d", i, s.Index)
				}
				w := 0.0
				for _, it := range s.Items {
					if it.Index != next {
						t.Fatalf("total=%d n=%d: expected global index %d, got %d", total, n, next, it.Index)
					}
					if it.Name != scenarios[next].Name || it.Config != scenarios[next].Config {
						t.Fatalf("item %d does not match its scenario", next)
					}
					w += weightByPDT(it.Scenario())
					next++
				}
				totalW += w
				if w > maxW {
					maxW = w
				}
			}
			if next != total {
				t.Fatalf("total=%d n=%d: plan covers %d scenarios", total, n, next)
			}
			// Balance: no shard may carry more than the ideal share plus the
			// heaviest single item (the greedy bound for contiguous
			// partitions).
			if total > 0 && n > 1 {
				heaviest := 0.0
				for _, s := range scenarios {
					if w := weightByPDT(s); w > heaviest {
						heaviest = w
					}
				}
				if ideal := totalW / float64(n); maxW > ideal+heaviest+1e-9 {
					t.Fatalf("total=%d n=%d: max shard weight %.2f exceeds ideal %.2f + heaviest %.2f",
						total, n, maxW, ideal, heaviest)
				}
			}
			// Determinism: replanning yields the identical partition.
			again, _ := PlanWeighted(scenarios, n, weightByPDT)
			for i := range shards {
				if len(again[i].Items) != len(shards[i].Items) {
					t.Fatalf("replan changed shard %d", i)
				}
			}
		}
	}
	if _, err := PlanWeighted(grid(3), 0, weightByPDT); err == nil {
		t.Fatal("PlanWeighted accepted 0 shards")
	}
}

// TestPlanWeightedNilIsPlan: a nil weight function must reproduce the
// unweighted partition exactly, so existing plans stay stable.
func TestPlanWeightedNilIsPlan(t *testing.T) {
	scenarios := grid(7)
	want, _ := Plan(scenarios, 3)
	got, err := PlanWeighted(scenarios, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if len(got[i].Items) != len(want[i].Items) {
			t.Fatalf("shard %d: %d items, want %d", i, len(got[i].Items), len(want[i].Items))
		}
	}
}

// TestPlanWeightedDegenerateWeights: zero, negative and NaN weights count
// as one unit, so a broken or untrained cost model degrades to count
// balancing instead of assigning the whole batch to one shard.
func TestPlanWeightedDegenerateWeights(t *testing.T) {
	scenarios := grid(10)
	for name, weight := range map[string]WeightFunc{
		"zero":     func(core.Scenario) float64 { return 0 },
		"negative": func(core.Scenario) float64 { return -5 },
		"nan":      func(core.Scenario) float64 { return math.NaN() },
	} {
		shards, err := PlanWeighted(scenarios, 3, weight)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		covered := 0
		for _, s := range shards {
			if len(s.Items) == 0 || len(s.Items) > 5 {
				t.Fatalf("%s: degenerate shard sizes: %d items in shard %d", name, len(s.Items), s.Index)
			}
			covered += len(s.Items)
		}
		if covered != 10 {
			t.Fatalf("%s: covered %d of 10", name, covered)
		}
	}
}

// TestPlanWeightedPlacementIndependence: the same batch run through a
// count-balanced and a cost-weighted plan must merge to bit-identical
// estimates — weighting is a wall-clock choice, never an output one.
func TestPlanWeightedPlacementIndependence(t *testing.T) {
	cfg := core.PaperConfig()
	cfg.SimTime = 50
	cfg.Warmup = 5
	cfg.Replications = 1
	scenarios := make([]core.Scenario, 6)
	for i := range scenarios {
		c := cfg
		c.PDT = float64(i) / 10
		scenarios[i] = core.Scenario{Name: "pdt", Config: c}
	}
	spec := RunnerSpec{Base: cfg, Seed: cfg.Seed, Methods: []string{"markov"}, DeriveSeeds: true}

	run := func(weight WeightFunc) []core.Result {
		t.Helper()
		m, err := NewManifestWeighted("", spec, scenarios, 3, weight)
		if err != nil {
			t.Fatal(err)
		}
		sets := make([]*ResultSet, 0, len(m.Shards))
		for _, sh := range m.Shards {
			worker, err := spec.NewRunner(core.WithCache(false))
			if err != nil {
				t.Fatal(err)
			}
			rs, err := RunShard(context.Background(), worker, sh)
			if err != nil {
				t.Fatal(err)
			}
			sets = append(sets, rs)
		}
		merged, err := Merge(m, sets)
		if err != nil {
			t.Fatal(err)
		}
		return merged
	}

	flat := run(nil)
	weighted := run(weightByPDT)
	for i := range flat {
		if *flat[i].Estimates[0] != *weighted[i].Estimates[0] || flat[i].Seed != weighted[i].Seed {
			t.Fatalf("scenario %d: weighted plan changed the result", i)
		}
	}
}

// TestMergeIncompleteError: an incomplete merge surfaces the typed gap
// report with every missing index, matching Missing().
func TestMergeIncompleteError(t *testing.T) {
	m := mkManifest(t, 4)
	a, _ := NewResultSet(0, []core.Result{mkResult(1, 2)})
	_, err := Merge(m, []*ResultSet{a})
	var inc *IncompleteError
	if !errors.As(err, &inc) {
		t.Fatalf("merge error %v is not an IncompleteError", err)
	}
	if inc.Total != 4 || len(inc.Missing) != 3 {
		t.Fatalf("gap report: %+v", inc)
	}
	for i, want := range []int{0, 2, 3} {
		if inc.Missing[i] != want {
			t.Fatalf("missing[%d] = %d, want %d", i, inc.Missing[i], want)
		}
	}
	got := Missing(m, []*ResultSet{a})
	if len(got) != len(inc.Missing) {
		t.Fatalf("Missing() disagrees with Merge: %v vs %v", got, inc.Missing)
	}
	for i := range got {
		if got[i] != inc.Missing[i] {
			t.Fatalf("Missing() disagrees with Merge: %v vs %v", got, inc.Missing)
		}
	}
	// Long gaps truncate the message but never the list.
	big := &IncompleteError{Total: 100, Missing: make([]int, 50)}
	if msg := big.Error(); len(msg) > 200 {
		t.Fatalf("gap message not truncated: %q", msg)
	}
}

// TestReplanCoversExactlyMissing: re-planning covers each missing index
// exactly once, copies the plan's items verbatim, and rejects indices the
// plan never assigned.
func TestReplanCoversExactlyMissing(t *testing.T) {
	scenarios := grid(9)
	spec := RunnerSpec{Base: core.PaperConfig(), Methods: []string{"markov"}}
	m, err := NewManifest("", spec, scenarios, 3)
	if err != nil {
		t.Fatal(err)
	}
	missing := []int{7, 2, 5, 2} // unordered with a duplicate: collapses
	shards, err := Replan(m, missing, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]Item{}
	for _, s := range shards {
		for _, it := range s.Items {
			if _, dup := got[it.Index]; dup {
				t.Fatalf("replan assigned index %d twice", it.Index)
			}
			got[it.Index] = it
		}
	}
	if len(got) != 3 {
		t.Fatalf("replan covers %d indices, want 3", len(got))
	}
	for _, idx := range []int{2, 5, 7} {
		it, ok := got[idx]
		if !ok {
			t.Fatalf("replan dropped missing index %d", idx)
		}
		if it.Name != scenarios[idx].Name || it.Config != scenarios[idx].Config {
			t.Fatalf("replanned item %d does not match the plan's scenario", idx)
		}
	}
	// Completed indices must never re-enter: only the requested ones do.
	for idx := range got {
		if idx != 2 && idx != 5 && idx != 7 {
			t.Fatalf("replan resurrected completed index %d", idx)
		}
	}
	if _, err := Replan(m, []int{42}, 1); err == nil {
		t.Fatal("out-of-range replan index accepted")
	}
	if _, err := Replan(m, []int{1}, 0); err == nil {
		t.Fatal("replan accepted 0 shards")
	}
}

// TestMissingFrom: the incremental-coverage complement agrees with the
// set-based Missing and feeds Replan directly.
func TestMissingFrom(t *testing.T) {
	scenarios := grid(6)
	spec := RunnerSpec{Base: core.PaperConfig(), Methods: []string{"markov"}}
	m, err := NewManifest("", spec, scenarios, 2)
	if err != nil {
		t.Fatal(err)
	}
	covered := map[int]bool{0: true, 3: true, 4: true}
	got := m.MissingFrom(covered)
	want := []int{1, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("MissingFrom = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MissingFrom = %v, want %v (sorted)", got, want)
		}
	}
	if shards, err := Replan(m, got, 2); err != nil || len(shards) == 0 {
		t.Fatalf("Replan over MissingFrom = (%v, %v)", shards, err)
	}
	if got := m.MissingFrom(nil); len(got) != m.Total {
		t.Fatalf("empty coverage misses %d of %d", len(got), m.Total)
	}
	full := make(map[int]bool, m.Total)
	for i := 0; i < m.Total; i++ {
		full[i] = true
	}
	if got := m.MissingFrom(full); len(got) != 0 {
		t.Fatalf("full coverage still missing %v", got)
	}
}

// TestRecoveredMergeByteIdentical is the crash-recovery contract end to
// end, in process: run a plan but lose one shard's results, re-plan the
// gap Merge reports, run the recovery shards with a fresh Runner, and
// require the recovered merge to serialize byte-identically to the
// uninterrupted one.
func TestRecoveredMergeByteIdentical(t *testing.T) {
	cfg := core.PaperConfig()
	cfg.SimTime = 50
	cfg.Warmup = 5
	cfg.Replications = 1
	scenarios := make([]core.Scenario, 8)
	for i := range scenarios {
		c := cfg
		c.PDT = float64(i) / 10
		scenarios[i] = core.Scenario{Name: "pdt", Config: c}
	}
	spec := RunnerSpec{Base: cfg, Seed: cfg.Seed, Methods: []string{"markov"}, DeriveSeeds: true}
	m, err := NewManifest("", spec, scenarios, 4)
	if err != nil {
		t.Fatal(err)
	}
	runShard := func(sh Shard) *ResultSet {
		t.Helper()
		worker, err := spec.NewRunner(core.WithCache(false))
		if err != nil {
			t.Fatal(err)
		}
		rs, err := RunShard(context.Background(), worker, sh)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}

	// Uninterrupted run: every shard reports.
	complete := make([]*ResultSet, 0, len(m.Shards))
	for _, sh := range m.Shards {
		complete = append(complete, runShard(sh))
	}
	want, err := Merge(m, complete)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: shard 2's worker "crashes" (its set is lost).
	survived := []*ResultSet{complete[0], complete[1], complete[3]}
	_, err = Merge(m, survived)
	var inc *IncompleteError
	if !errors.As(err, &inc) {
		t.Fatalf("interrupted merge: %v", err)
	}
	recovery, err := Replan(m, inc.Missing, 2)
	if err != nil {
		t.Fatal(err)
	}
	recovered := survived
	for _, sh := range recovery {
		if len(sh.Items) == 0 {
			continue
		}
		recovered = append(recovered, runShard(sh))
	}
	got, err := Merge(m, recovered)
	if err != nil {
		t.Fatalf("recovered merge: %v", err)
	}

	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("recovered merge differs from uninterrupted merge:\n%s\n%s", wantJSON, gotJSON)
	}
}

// TestManifestScenariosRoundTrip: Scenarios() inverts the plan.
func TestManifestScenariosRoundTrip(t *testing.T) {
	scenarios := grid(7)
	m, err := NewManifest("", RunnerSpec{Base: core.PaperConfig(), Methods: []string{"markov"}}, scenarios, 3)
	if err != nil {
		t.Fatal(err)
	}
	back := m.Scenarios()
	if len(back) != len(scenarios) {
		t.Fatalf("Scenarios() returned %d, want %d", len(back), len(scenarios))
	}
	for i := range scenarios {
		if back[i] != scenarios[i] {
			t.Fatalf("scenario %d changed in round trip", i)
		}
	}
}
