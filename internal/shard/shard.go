// Package shard splits a Runner batch across processes and reassembles the
// results. It is the scale-out layer over internal/core: Plan partitions a
// scenario list deterministically, a Manifest carries the partition and the
// Runner parameters to worker processes as JSON, each worker writes its
// completed scenarios as a ResultSet, and Merge reassembles the sets in
// input order with conflict detection.
//
// Placement independence is by construction, not by coordination: the
// Runner derives every scenario's RNG seed from the master seed and the
// scenario's configuration content (never from batch position or worker
// identity), so a scenario produces bit-identical results whichever shard —
// or how many shards — it runs in. A sweep split N ways and merged is
// therefore byte-identical to the same sweep run in one process. Workers
// that additionally share a core.FileBackend result cache also skip grid
// points another worker has already finished.
package shard

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
)

// ManifestVersion is the schema version of the shard-manifest JSON; readers
// reject manifests written under any other version.
const ManifestVersion = 1

// Item is one scenario of the batch, tagged with its global position so
// shards can be merged back into input order.
type Item struct {
	// Index is the scenario's position in the original batch.
	Index int `json:"index"`
	// Name labels the scenario (core.Scenario.Name).
	Name string `json:"name,omitempty"`
	// Config is the scenario's full configuration.
	Config core.Config `json:"config"`
}

// Scenario converts the item back to the Runner's scenario shape.
func (it Item) Scenario() core.Scenario {
	return core.Scenario{Name: it.Name, Config: it.Config}
}

// Shard is one worker's slice of the batch.
type Shard struct {
	// Index identifies the shard within its plan (0-based).
	Index int `json:"index"`
	// Items lists the shard's scenarios with their global indices.
	Items []Item `json:"items"`
}

// RunnerSpec carries the Runner parameters every worker must agree on for
// the merged output to equal a single-process run.
type RunnerSpec struct {
	// Base is the base model configuration (core.WithConfig).
	Base core.Config `json:"base"`
	// Seed is the master seed (core.WithSeed).
	Seed uint64 `json:"seed"`
	// Methods are the estimator specs resolved through the registry, in
	// estimator order (core.WithMethods).
	Methods []string `json:"methods"`
	// DeriveSeeds mirrors core.WithSeedDerivation.
	DeriveSeeds bool `json:"derive_seeds"`
}

// NewRunner builds the worker-side Runner from the spec. Extra options
// (parallelism, cache backend) are appended after the spec's own, so they
// may refine but not contradict it.
func (sp RunnerSpec) NewRunner(extra ...core.RunnerOption) (*core.Runner, error) {
	opts := []core.RunnerOption{
		core.WithConfig(sp.Base),
		core.WithSeed(sp.Seed),
		core.WithMethods(sp.Methods...),
		core.WithSeedDerivation(sp.DeriveSeeds),
	}
	return core.NewRunner(append(opts, extra...)...)
}

// Manifest is the JSON document a coordinator writes with `plan` and every
// worker and the merger read back: the full partition plus everything
// needed to reconstruct identical Runners.
type Manifest struct {
	// Version is ManifestVersion at write time.
	Version int `json:"version"`
	// Experiment optionally names the artifact the plan serves (e.g.
	// "table4"), for self-describing pipelines; the shard machinery itself
	// does not interpret it.
	Experiment string `json:"experiment,omitempty"`
	// Runner is the shared Runner parameterization.
	Runner RunnerSpec `json:"runner"`
	// Total is the scenario count of the original batch.
	Total int `json:"total_scenarios"`
	// Extra carries coordinator-specific context the shard machinery does
	// not interpret — e.g. the sweep axes a renderer needs at merge time.
	Extra json.RawMessage `json:"extra,omitempty"`
	// Shards is the partition; concatenated in order, the shards' items
	// restore the original batch exactly.
	Shards []Shard `json:"shards"`
}

// Shard returns the shard with the given index.
func (m *Manifest) Shard(index int) (Shard, error) {
	for _, s := range m.Shards {
		if s.Index == index {
			return s, nil
		}
	}
	return Shard{}, fmt.Errorf("shard: manifest has no shard %d (plan has %d shards)", index, len(m.Shards))
}

// Plan partitions scenarios into n shards deterministically: contiguous,
// balanced slices (the first total%n shards take one extra scenario).
// Every scenario appears in exactly one shard, tagged with its global
// index. Shards may be empty when n exceeds the scenario count.
//
// Because Runner seeds are content-derived, the partition is purely a
// load-balancing choice: any assignment yields the same per-scenario
// results.
func Plan(scenarios []core.Scenario, n int) ([]Shard, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: plan needs at least 1 shard, got %d", n)
	}
	shards := make([]Shard, n)
	total := len(scenarios)
	next := 0
	for i := range shards {
		size := total / n
		if i < total%n {
			size++
		}
		items := make([]Item, 0, size)
		for j := 0; j < size; j++ {
			s := scenarios[next]
			items = append(items, Item{Index: next, Name: s.Name, Config: s.Config})
			next++
		}
		shards[i] = Shard{Index: i, Items: items}
	}
	return shards, nil
}

// NewManifest plans the batch and wraps it with the Runner spec.
func NewManifest(experiment string, spec RunnerSpec, scenarios []core.Scenario, n int) (*Manifest, error) {
	shards, err := Plan(scenarios, n)
	if err != nil {
		return nil, err
	}
	return &Manifest{
		Version:    ManifestVersion,
		Experiment: experiment,
		Runner:     spec,
		Total:      len(scenarios),
		Shards:     shards,
	}, nil
}

// WriteManifest writes the manifest as indented JSON.
func WriteManifest(path string, m *Manifest) error {
	return writeJSON(path, m)
}

// ReadManifest reads and validates a manifest: version, shard indices, and
// the exactly-once global index coverage Merge will later rely on.
func ReadManifest(path string) (*Manifest, error) {
	var m Manifest
	if err := readJSON(path, &m); err != nil {
		return nil, fmt.Errorf("shard: reading manifest %s: %w", path, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("shard: manifest %s has version %d, want %d", path, m.Version, ManifestVersion)
	}
	seen := make(map[int]bool, m.Total)
	for i, s := range m.Shards {
		if s.Index != i {
			return nil, fmt.Errorf("shard: manifest shard %d carries index %d", i, s.Index)
		}
		for _, it := range s.Items {
			if it.Index < 0 || it.Index >= m.Total {
				return nil, fmt.Errorf("shard: scenario index %d outside batch of %d", it.Index, m.Total)
			}
			if seen[it.Index] {
				return nil, fmt.Errorf("shard: scenario %d assigned to more than one shard", it.Index)
			}
			seen[it.Index] = true
		}
	}
	if len(seen) != m.Total {
		return nil, fmt.Errorf("shard: manifest covers %d of %d scenarios", len(seen), m.Total)
	}
	return &m, nil
}

// writeJSON marshals v indented and writes it atomically enough for our
// single-writer files (plain create-then-write; manifests and result sets
// have one producer each).
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encoding %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// readJSON strictly decodes one JSON document from path into v.
func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
