// Package shard splits a Runner batch across processes and reassembles the
// results. It is the scale-out layer over internal/core: Plan partitions a
// scenario list deterministically, a Manifest carries the partition and the
// Runner parameters to worker processes as JSON, each worker writes its
// completed scenarios as a ResultSet, and Merge reassembles the sets in
// input order with conflict detection.
//
// Placement independence is by construction, not by coordination: the
// Runner derives every scenario's RNG seed from the master seed and the
// scenario's configuration content (never from batch position or worker
// identity), so a scenario produces bit-identical results whichever shard —
// or how many shards — it runs in. A sweep split N ways and merged is
// therefore byte-identical to the same sweep run in one process. Workers
// that additionally share a core.FileBackend result cache also skip grid
// points another worker has already finished.
package shard

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
)

// ManifestVersion is the schema version of the shard-manifest JSON; readers
// reject manifests written under any other version.
const ManifestVersion = 1

// Item is one scenario of the batch, tagged with its global position so
// shards can be merged back into input order.
type Item struct {
	// Index is the scenario's position in the original batch.
	Index int `json:"index"`
	// Name labels the scenario (core.Scenario.Name).
	Name string `json:"name,omitempty"`
	// Config is the scenario's full configuration.
	Config core.Config `json:"config"`
}

// Scenario converts the item back to the Runner's scenario shape.
func (it Item) Scenario() core.Scenario {
	return core.Scenario{Name: it.Name, Config: it.Config}
}

// Shard is one worker's slice of the batch.
type Shard struct {
	// Index identifies the shard within its plan (0-based).
	Index int `json:"index"`
	// Items lists the shard's scenarios with their global indices.
	Items []Item `json:"items"`
}

// RunnerSpec carries the Runner parameters every worker must agree on for
// the merged output to equal a single-process run.
type RunnerSpec struct {
	// Base is the base model configuration (core.WithConfig).
	Base core.Config `json:"base"`
	// Seed is the master seed (core.WithSeed).
	Seed uint64 `json:"seed"`
	// Methods are the estimator specs resolved through the registry, in
	// estimator order (core.WithMethods).
	Methods []string `json:"methods"`
	// DeriveSeeds mirrors core.WithSeedDerivation.
	DeriveSeeds bool `json:"derive_seeds"`
}

// NewRunner builds the worker-side Runner from the spec. Extra options
// (parallelism, cache backend) are appended after the spec's own, so they
// may refine but not contradict it.
func (sp RunnerSpec) NewRunner(extra ...core.RunnerOption) (*core.Runner, error) {
	opts := []core.RunnerOption{
		core.WithConfig(sp.Base),
		core.WithSeed(sp.Seed),
		core.WithMethods(sp.Methods...),
		core.WithSeedDerivation(sp.DeriveSeeds),
	}
	return core.NewRunner(append(opts, extra...)...)
}

// Manifest is the JSON document a coordinator writes with `plan` and every
// worker and the merger read back: the full partition plus everything
// needed to reconstruct identical Runners.
type Manifest struct {
	// Version is ManifestVersion at write time.
	Version int `json:"version"`
	// Experiment optionally names the artifact the plan serves (e.g.
	// "table4"), for self-describing pipelines; the shard machinery itself
	// does not interpret it.
	Experiment string `json:"experiment,omitempty"`
	// Runner is the shared Runner parameterization.
	Runner RunnerSpec `json:"runner"`
	// Total is the scenario count of the original batch.
	Total int `json:"total_scenarios"`
	// Extra carries coordinator-specific context the shard machinery does
	// not interpret — e.g. the sweep axes a renderer needs at merge time.
	Extra json.RawMessage `json:"extra,omitempty"`
	// Shards is the partition; concatenated in order, the shards' items
	// restore the original batch exactly.
	Shards []Shard `json:"shards"`
}

// Shard returns the shard with the given index.
func (m *Manifest) Shard(index int) (Shard, error) {
	for _, s := range m.Shards {
		if s.Index == index {
			return s, nil
		}
	}
	return Shard{}, fmt.Errorf("shard: manifest has no shard %d (plan has %d shards)", index, len(m.Shards))
}

// Plan partitions scenarios into n shards deterministically: contiguous,
// balanced slices (the first total%n shards take one extra scenario).
// Every scenario appears in exactly one shard, tagged with its global
// index. Shards may be empty when n exceeds the scenario count.
//
// Because Runner seeds are content-derived, the partition is purely a
// load-balancing choice: any assignment yields the same per-scenario
// results.
func Plan(scenarios []core.Scenario, n int) ([]Shard, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: plan needs at least 1 shard, got %d", n)
	}
	shards := make([]Shard, n)
	total := len(scenarios)
	next := 0
	for i := range shards {
		size := total / n
		if i < total%n {
			size++
		}
		items := make([]Item, 0, size)
		for j := 0; j < size; j++ {
			s := scenarios[next]
			items = append(items, Item{Index: next, Name: s.Name, Config: s.Config})
			next++
		}
		shards[i] = Shard{Index: i, Items: items}
	}
	return shards, nil
}

// WeightFunc scores one scenario's predicted cost (e.g. in seconds) for
// cost-weighted planning. Non-positive and NaN weights count as one unit,
// so a partially trained cost model degrades shard by shard to count
// balancing instead of producing degenerate partitions.
type WeightFunc func(core.Scenario) float64

// PlanWeighted partitions scenarios into n contiguous shards balancing the
// total weight per shard rather than the scenario count: a grid whose
// expensive rows cluster at one end (long-horizon scenarios sort together
// in sweep order) no longer hands one worker all the slow points. A nil
// weight function is exactly Plan.
//
// The partition is deterministic in (scenarios, n, weights): each shard is
// closed greedily against the ideal remaining-weight-per-remaining-shard
// target. Like Plan, the partition is purely a load-balancing choice —
// content-derived seeds make any assignment produce identical per-scenario
// results — so replanning with a retrained cost table changes wall-clock
// balance, never output.
func PlanWeighted(scenarios []core.Scenario, n int, weight WeightFunc) ([]Shard, error) {
	if weight == nil {
		return Plan(scenarios, n)
	}
	if n < 1 {
		return nil, fmt.Errorf("shard: plan needs at least 1 shard, got %d", n)
	}
	weights := make([]float64, len(scenarios))
	remaining := 0.0
	for i, s := range scenarios {
		w := weight(s)
		if !(w > 0) { // non-positive or NaN: treat as one unit of work
			w = 1
		}
		weights[i] = w
		remaining += w
	}
	shards := make([]Shard, n)
	next := 0
	for i := range shards {
		items := []Item{}
		if left := n - i; left > 0 && next < len(scenarios) {
			target := remaining / float64(left)
			acc := 0.0
			for next < len(scenarios) {
				w := weights[next]
				// Take the scenario if it brings the shard closer to (or is
				// the first step toward) the ideal target; the last shard
				// takes everything left.
				if len(items) > 0 && i < n-1 && acc+w/2 > target {
					break
				}
				s := scenarios[next]
				items = append(items, Item{Index: next, Name: s.Name, Config: s.Config})
				acc += w
				next++
			}
			remaining -= acc
		}
		shards[i] = Shard{Index: i, Items: items}
	}
	return shards, nil
}

// NewManifest plans the batch and wraps it with the Runner spec.
func NewManifest(experiment string, spec RunnerSpec, scenarios []core.Scenario, n int) (*Manifest, error) {
	return NewManifestWeighted(experiment, spec, scenarios, n, nil)
}

// NewManifestWeighted is NewManifest with a cost-weighted partition: the
// form a coordinator uses once it has a trained per-method cost model.
func NewManifestWeighted(experiment string, spec RunnerSpec, scenarios []core.Scenario, n int, weight WeightFunc) (*Manifest, error) {
	shards, err := PlanWeighted(scenarios, n, weight)
	if err != nil {
		return nil, err
	}
	return &Manifest{
		Version:    ManifestVersion,
		Experiment: experiment,
		Runner:     spec,
		Total:      len(scenarios),
		Shards:     shards,
	}, nil
}

// WriteManifest writes the manifest as indented JSON.
func WriteManifest(path string, m *Manifest) error {
	return writeJSON(path, m)
}

// Validate checks the manifest's structural invariants: schema version,
// sequential shard indices, and the exactly-once global index coverage
// Merge will later rely on.
func (m *Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("shard: manifest has version %d, want %d", m.Version, ManifestVersion)
	}
	seen := make(map[int]bool, m.Total)
	for i, s := range m.Shards {
		if s.Index != i {
			return fmt.Errorf("shard: manifest shard %d carries index %d", i, s.Index)
		}
		for _, it := range s.Items {
			if it.Index < 0 || it.Index >= m.Total {
				return fmt.Errorf("shard: scenario index %d outside batch of %d", it.Index, m.Total)
			}
			if seen[it.Index] {
				return fmt.Errorf("shard: scenario %d assigned to more than one shard", it.Index)
			}
			seen[it.Index] = true
		}
	}
	if len(seen) != m.Total {
		return fmt.Errorf("shard: manifest covers %d of %d scenarios", len(seen), m.Total)
	}
	return nil
}

// Scenarios flattens the plan back to the original batch in global index
// order — the inverse of Plan, used by coordinators that re-partition a
// submitted manifest against their own cost model.
func (m *Manifest) Scenarios() []core.Scenario {
	out := make([]core.Scenario, m.Total)
	for _, s := range m.Shards {
		for _, it := range s.Items {
			if it.Index >= 0 && it.Index < m.Total {
				out[it.Index] = it.Scenario()
			}
		}
	}
	return out
}

// ReadManifest reads and validates a manifest: version, shard indices, and
// the exactly-once global index coverage Merge will later rely on.
func ReadManifest(path string) (*Manifest, error) {
	var m Manifest
	if err := readJSON(path, &m); err != nil {
		return nil, fmt.Errorf("shard: reading manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w (manifest %s)", err, path)
	}
	return &m, nil
}

// writeJSON marshals v indented and writes it atomically enough for our
// single-writer files (plain create-then-write; manifests and result sets
// have one producer each).
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encoding %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// readJSON strictly decodes one JSON document from path into v.
func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
