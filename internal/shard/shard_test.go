package shard

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// grid builds a small Figure-4-style scenario batch.
func grid(n int) []core.Scenario {
	out := make([]core.Scenario, n)
	for i := range out {
		cfg := core.PaperConfig()
		cfg.PDT = float64(i) / 10
		out[i] = core.Scenario{Name: string(rune('a' + i)), Config: cfg}
	}
	return out
}

// TestPlanPartitionProperty: for a range of batch sizes and shard counts,
// the plan must cover every scenario exactly once, in order, with balanced
// shard sizes — and be deterministic.
func TestPlanPartitionProperty(t *testing.T) {
	for _, total := range []int{0, 1, 2, 3, 7, 11, 33} {
		for _, n := range []int{1, 2, 3, 5, 8, 40} {
			scenarios := grid(total)
			shards, err := Plan(scenarios, n)
			if err != nil {
				t.Fatalf("total=%d n=%d: %v", total, n, err)
			}
			if len(shards) != n {
				t.Fatalf("total=%d n=%d: %d shards", total, n, len(shards))
			}
			next := 0
			minSize, maxSize := total, 0
			for i, s := range shards {
				if s.Index != i {
					t.Fatalf("shard %d has index %d", i, s.Index)
				}
				if len(s.Items) < minSize {
					minSize = len(s.Items)
				}
				if len(s.Items) > maxSize {
					maxSize = len(s.Items)
				}
				for _, it := range s.Items {
					if it.Index != next {
						t.Fatalf("total=%d n=%d: expected global index %d, got %d", total, n, next, it.Index)
					}
					if it.Name != scenarios[next].Name || it.Config != scenarios[next].Config {
						t.Fatalf("item %d does not match its scenario", next)
					}
					next++
				}
			}
			if next != total {
				t.Fatalf("total=%d n=%d: plan covers %d scenarios", total, n, next)
			}
			if total >= n && maxSize-minSize > 1 {
				t.Fatalf("total=%d n=%d: unbalanced plan (min %d, max %d)", total, n, minSize, maxSize)
			}
			// Determinism: replanning yields the identical partition.
			again, _ := Plan(scenarios, n)
			for i := range shards {
				if len(again[i].Items) != len(shards[i].Items) {
					t.Fatalf("replan changed shard %d", i)
				}
			}
		}
	}
	if _, err := Plan(grid(3), 0); err == nil {
		t.Fatal("Plan accepted 0 shards")
	}
}

// TestManifestRoundTrip: write → read restores the plan, and the reader
// validates version and coverage.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := RunnerSpec{Base: core.PaperConfig(), Seed: 42, Methods: []string{"markov"}, DeriveSeeds: true}
	m, err := NewManifest("table4", spec, grid(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "plan.json")
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "table4" || got.Total != 5 || len(got.Shards) != 2 {
		t.Fatalf("round trip changed the manifest: %+v", got)
	}
	if got.Runner.Seed != 42 || got.Runner.Methods[0] != "markov" || !got.Runner.DeriveSeeds {
		t.Fatalf("round trip changed the runner spec: %+v", got.Runner)
	}
	if got.Shards[1].Items[0].Config != m.Shards[1].Items[0].Config {
		t.Fatal("round trip changed a scenario config")
	}
	if _, err := got.Shard(1); err != nil {
		t.Fatal(err)
	}
	if _, err := got.Shard(7); err == nil {
		t.Fatal("nonexistent shard index accepted")
	}
}

// TestManifestValidation: version mismatches and broken coverage are
// rejected at read time.
func TestManifestValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, mutate func(*Manifest)) string {
		t.Helper()
		m, err := NewManifest("fig4", RunnerSpec{Base: core.PaperConfig(), Seed: 1, Methods: []string{"markov"}}, grid(4), 2)
		if err != nil {
			t.Fatal(err)
		}
		mutate(m)
		path := filepath.Join(dir, name)
		if err := WriteManifest(path, m); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name   string
		mutate func(*Manifest)
		want   string
	}{
		{"version.json", func(m *Manifest) { m.Version = ManifestVersion + 1 }, "version"},
		{"dup.json", func(m *Manifest) { m.Shards[1].Items[0].Index = 0 }, "more than one shard"},
		{"missing.json", func(m *Manifest) { m.Shards[1].Items = m.Shards[1].Items[:1] }, "covers"},
		{"range.json", func(m *Manifest) { m.Shards[0].Items[0].Index = 99 }, "outside"},
		{"shardidx.json", func(m *Manifest) { m.Shards[0].Index = 5 }, "carries index"},
	}
	for _, tc := range cases {
		path := write(tc.name, tc.mutate)
		_, err := ReadManifest(path)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// mkResult builds one successful core.Result.
func mkResult(index int, energyJ float64) core.Result {
	return core.Result{
		Index:     index,
		Scenario:  core.Scenario{Name: "s"},
		Seed:      uint64(index),
		Estimates: []*core.Estimate{{Method: "m", EnergyJ: energyJ}},
	}
}

// mkManifest plans a batch matching mkResult's scenarios (name "s", zero
// config) for the merge tests.
func mkManifest(t *testing.T, total int) *Manifest {
	t.Helper()
	scenarios := make([]core.Scenario, total)
	for i := range scenarios {
		scenarios[i] = core.Scenario{Name: "s"}
	}
	m, err := NewManifest("", RunnerSpec{Base: core.PaperConfig(), Methods: []string{"markov"}}, scenarios, 2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestResultSetRoundTripAndMerge(t *testing.T) {
	dir := t.TempDir()
	rs0, err := NewResultSet(0, []core.Result{mkResult(0, 1), mkResult(2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	rs1, err := NewResultSet(1, []core.Result{mkResult(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	p0 := filepath.Join(dir, "r0.json")
	if err := WriteResultSet(p0, rs0); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultSet(p0)
	if err != nil {
		t.Fatal(err)
	}
	if back.ShardIndex != 0 || len(back.Results) != 2 || back.Results[1].Estimates[0].EnergyJ != 3 {
		t.Fatalf("result set round trip: %+v", back)
	}

	merged, err := Merge(mkManifest(t, 3), []*ResultSet{back, rs1})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3} {
		if merged[i].Index != i || merged[i].Estimates[0].EnergyJ != want {
			t.Fatalf("merged[%d] = %+v, want energy %v", i, merged[i], want)
		}
	}
}

func TestMergeDetectsConflicts(t *testing.T) {
	m := mkManifest(t, 2)
	a, _ := NewResultSet(0, []core.Result{mkResult(0, 1), mkResult(1, 2)})
	// Shard 1 reports scenario 1 with a different estimate: with
	// content-derived seeding this can only mean diverging workers.
	b, _ := NewResultSet(1, []core.Result{mkResult(1, 99)})
	if _, err := Merge(m, []*ResultSet{a, b}); err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Fatalf("conflicting duplicate not detected: %v", err)
	}
	// An identical duplicate is redundant but consistent: tolerated.
	c, _ := NewResultSet(1, []core.Result{mkResult(1, 2)})
	if _, err := Merge(m, []*ResultSet{a, c}); err != nil {
		t.Fatalf("identical duplicate rejected: %v", err)
	}
}

func TestMergeDetectsGapsAndRange(t *testing.T) {
	m := mkManifest(t, 2)
	a, _ := NewResultSet(0, []core.Result{mkResult(0, 1)})
	if _, err := Merge(m, []*ResultSet{a}); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("gap not detected: %v", err)
	}
	oob, _ := NewResultSet(0, []core.Result{mkResult(5, 1)})
	if _, err := Merge(m, []*ResultSet{oob}); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("out-of-range index not detected: %v", err)
	}
}

// TestMergeDetectsForeignResultSet: a result set produced under a
// different plan (same indices, different scenario parameters) must be
// rejected, not silently mixed into the artifact.
func TestMergeDetectsForeignResultSet(t *testing.T) {
	m := mkManifest(t, 2)
	stale := mkResult(0, 1)
	stale.Scenario.Config = core.PaperConfig() // planned config is the zero value
	a, _ := NewResultSet(0, []core.Result{stale})
	b, _ := NewResultSet(1, []core.Result{mkResult(1, 2)})
	if _, err := Merge(m, []*ResultSet{a, b}); err == nil || !strings.Contains(err.Error(), "different scenario") {
		t.Fatalf("foreign result set not detected: %v", err)
	}
	renamed := mkResult(0, 1)
	renamed.Scenario.Name = "other"
	c, _ := NewResultSet(0, []core.Result{renamed})
	if _, err := Merge(m, []*ResultSet{c, b}); err == nil || !strings.Contains(err.Error(), "different scenario") {
		t.Fatalf("renamed scenario not detected: %v", err)
	}
}

// TestNewResultSetRefusesFailures: a failed or skipped scenario must fail
// serialization, not produce a partial set the merger would flag later.
func TestNewResultSetRefusesFailures(t *testing.T) {
	bad := mkResult(0, 1)
	bad.Err = context.DeadlineExceeded
	if _, err := NewResultSet(0, []core.Result{bad}); err == nil {
		t.Fatal("failed scenario serialized")
	}
}

// TestRunShardPlacementIndependence is the placement-independence contract
// end to end, in process: the same batch run unsharded, in 2 shards, and
// in 3 shards — with workers reconstructed from the RunnerSpec — must
// merge to bit-identical estimates.
func TestRunShardPlacementIndependence(t *testing.T) {
	cfg := core.PaperConfig()
	cfg.SimTime = 50
	cfg.Warmup = 5
	cfg.Replications = 1
	scenarios := make([]core.Scenario, 6)
	for i := range scenarios {
		c := cfg
		c.PDT = float64(i) / 10
		scenarios[i] = core.Scenario{Name: "pdt", Config: c}
	}
	spec := RunnerSpec{Base: cfg, Seed: cfg.Seed, Methods: []string{"markov"}, DeriveSeeds: true}

	reference, err := spec.NewRunner(core.WithCache(false))
	if err != nil {
		t.Fatal(err)
	}
	want, err := reference.RunAll(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{2, 3} {
		m, err := NewManifest("", spec, scenarios, n)
		if err != nil {
			t.Fatal(err)
		}
		sets := make([]*ResultSet, n)
		for i, sh := range m.Shards {
			// A fresh Runner per shard, as separate worker processes
			// would construct.
			worker, err := spec.NewRunner(core.WithCache(false))
			if err != nil {
				t.Fatal(err)
			}
			if sets[i], err = RunShard(context.Background(), worker, sh); err != nil {
				t.Fatal(err)
			}
		}
		merged, err := Merge(m, sets)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if merged[i].Seed != want[i].Seed {
				t.Fatalf("n=%d scenario %d: seed %d != %d", n, i, merged[i].Seed, want[i].Seed)
			}
			if merged[i].Scenario.Config != scenarios[i].Config {
				t.Fatalf("n=%d scenario %d: merge lost the scenario config", n, i)
			}
			if *merged[i].Estimates[0] != *want[i].Estimates[0] {
				t.Fatalf("n=%d scenario %d: sharded estimate differs from unsharded:\n%+v\n%+v",
					n, i, *merged[i].Estimates[0], *want[i].Estimates[0])
			}
		}
	}
}
