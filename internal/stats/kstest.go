package stats

import (
	"fmt"
	"math"
	"sort"
)

// KolmogorovSmirnov returns the one-sample KS statistic
// D = sup_x |F_n(x) - F(x)| for the given sample against a reference CDF.
// The input sample is not modified.
func KolmogorovSmirnov(sample []float64, cdf func(float64) float64) float64 {
	if len(sample) == 0 {
		panic("stats: KS test needs a non-empty sample")
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	n := float64(len(xs))
	d := 0.0
	for i, x := range xs {
		f := cdf(x)
		if f < 0 || f > 1 || math.IsNaN(f) {
			panic(fmt.Sprintf("stats: reference CDF returned %v at %v", f, x))
		}
		// Compare against the empirical CDF just below and at x.
		lo := float64(i) / n
		hi := float64(i+1) / n
		if diff := math.Abs(f - lo); diff > d {
			d = diff
		}
		if diff := math.Abs(f - hi); diff > d {
			d = diff
		}
	}
	return d
}

// KSCriticalValue returns the approximate critical value of the one-sample
// KS statistic at the given significance level (alpha in {0.10, 0.05,
// 0.01, 0.001}) for sample size n, using the asymptotic formula
// c(alpha)/sqrt(n). Valid for n >= 35; conservative below.
func KSCriticalValue(alpha float64, n int) float64 {
	if n < 1 {
		panic(fmt.Sprintf("stats: KS critical value needs n >= 1, got %d", n))
	}
	var c float64
	switch {
	case alpha >= 0.10:
		c = 1.224
	case alpha >= 0.05:
		c = 1.358
	case alpha >= 0.01:
		c = 1.628
	default:
		c = 1.949
	}
	return c / math.Sqrt(float64(n))
}
