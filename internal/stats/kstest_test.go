package stats

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func uniformCDF(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}

func TestKSUniformAccepts(t *testing.T) {
	r := xrand.New(21)
	const n = 5000
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = r.Float64()
	}
	d := KolmogorovSmirnov(sample, uniformCDF)
	if crit := KSCriticalValue(0.01, n); d > crit {
		t.Fatalf("uniform sample rejected: D = %v > %v", d, crit)
	}
}

func TestKSDetectsWrongDistribution(t *testing.T) {
	r := xrand.New(22)
	const n = 5000
	sample := make([]float64, n)
	for i := range sample {
		// Squared uniforms are Beta(1/2-ish), far from uniform.
		u := r.Float64()
		sample[i] = u * u
	}
	d := KolmogorovSmirnov(sample, uniformCDF)
	if crit := KSCriticalValue(0.001, n); d <= crit {
		t.Fatalf("non-uniform sample accepted: D = %v <= %v", d, crit)
	}
}

func TestKSExactSmallSample(t *testing.T) {
	// Sample {0.5} against U(0,1): empirical CDF jumps 0 -> 1 at 0.5, so
	// D = 0.5 exactly.
	if d := KolmogorovSmirnov([]float64{0.5}, uniformCDF); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("D = %v, want 0.5", d)
	}
}

func TestKSPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample accepted")
		}
	}()
	KolmogorovSmirnov(nil, uniformCDF)
}

func TestKSPanicsOnBadCDF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid CDF accepted")
		}
	}()
	KolmogorovSmirnov([]float64{1}, func(float64) float64 { return 2 })
}

func TestKSCriticalValueDecreasesWithN(t *testing.T) {
	if KSCriticalValue(0.05, 100) <= KSCriticalValue(0.05, 10000) {
		t.Fatal("critical value should shrink with n")
	}
	if KSCriticalValue(0.10, 100) >= KSCriticalValue(0.001, 100) {
		t.Fatal("critical value should grow with confidence")
	}
}
