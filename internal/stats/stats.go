// Package stats provides the statistical estimators used to turn raw
// simulation output into steady-state results with confidence intervals:
// Welford accumulators for i.i.d. observations, time-weighted accumulators
// for piecewise-constant processes (token counts, CPU states), batch means
// for single-run steady-state analysis and replication summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates scalar observations with Welford's numerically stable
// online algorithm. The zero value is ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll records every value in xs.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations recorded.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 if no observations).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 for fewer than 2 observations).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// Min returns the smallest observation (0 if none).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if none).
func (s *Summary) Max() float64 { return s.max }

// CI returns the half-width of the confidence interval for the mean at the
// given confidence level (e.g. 0.95), using the Student-t distribution with
// n-1 degrees of freedom. Returns 0 for fewer than 2 observations.
func (s *Summary) CI(level float64) float64 {
	if s.n < 2 {
		return 0
	}
	return TQuantile(1-(1-level)/2, s.n-1) * s.StdErr()
}

// Merge folds the other summary into s (parallel-friendly pairwise merge,
// Chan et al.). Min/max are combined exactly.
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g", s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// ---------------------------------------------------------------------------
// Time-weighted accumulation

// TimeWeighted integrates a piecewise-constant signal over time, yielding
// the time-average value — the estimator behind "average number of tokens in
// a place" and "fraction of time the CPU spends in a state".
type TimeWeighted struct {
	origin   float64
	lastT    float64
	lastV    float64
	integral float64
	started  bool
	min, max float64
}

// Start initializes the signal at time t with value v. Calling Start again
// resets the accumulator.
func (w *TimeWeighted) Start(t, v float64) {
	w.origin, w.lastT, w.lastV, w.integral, w.started = t, t, v, 0, true
	w.min, w.max = v, v
}

// Set records that the signal changed to value v at time t. Time must be
// non-decreasing; the value held since the previous event is integrated.
//
// Setting the value it already holds is a no-op: integration of a constant
// stretch is deferred until the value actually changes (or until
// Integral/MeanAt is queried). This keeps the accumulator arithmetic — and
// therefore the reported time-average, bit for bit — independent of how
// often a caller re-asserts an unchanged value, which is what allows the
// Petri-net engine to update only the places an event touched.
func (w *TimeWeighted) Set(t, v float64) {
	if !w.started {
		w.Start(t, v)
		return
	}
	if t < w.lastT {
		panic(fmt.Sprintf("stats: time went backwards: %v < %v", t, w.lastT))
	}
	if v == w.lastV {
		return
	}
	w.integral += w.lastV * (t - w.lastT)
	w.lastT, w.lastV = t, v
	if v < w.min {
		w.min = v
	}
	if v > w.max {
		w.max = v
	}
}

// Advance integrates up to time t without changing the value.
func (w *TimeWeighted) Advance(t float64) { w.Set(t, w.lastV) }

// Integral returns the integral of the signal from Start to time t.
func (w *TimeWeighted) Integral(t float64) float64 {
	if !w.started || t <= w.lastT {
		return w.integral
	}
	return w.integral + w.lastV*(t-w.lastT)
}

// MeanAt returns the time-average of the signal over [start, t].
func (w *TimeWeighted) MeanAt(t float64) float64 {
	if !w.started {
		return 0
	}
	// The origin is the time passed to Start; reconstruct it from state:
	// integral covers [start, lastT].
	dur := t - w.startTime()
	if dur <= 0 {
		return w.lastV
	}
	return w.Integral(t) / dur
}

// startTime returns the timestamp passed to Start.
func (w *TimeWeighted) startTime() float64 { return w.origin }

// Value returns the current value of the signal.
func (w *TimeWeighted) Value() float64 { return w.lastV }

// Min returns the minimum value observed.
func (w *TimeWeighted) Min() float64 { return w.min }

// Max returns the maximum value observed.
func (w *TimeWeighted) Max() float64 { return w.max }

// ---------------------------------------------------------------------------
// Batch means

// BatchMeans estimates a steady-state mean from a single long run by
// grouping consecutive observations into fixed-size batches; batch means are
// approximately independent when batches are long relative to the process
// autocorrelation time, so a Student-t interval over them is valid.
type BatchMeans struct {
	batchSize int
	current   Summary
	batches   Summary
	means     []float64
}

// NewBatchMeans creates an estimator with the given batch size (>= 1).
func NewBatchMeans(batchSize int) *BatchMeans {
	if batchSize < 1 {
		panic(fmt.Sprintf("stats: batch size must be >= 1, got %d", batchSize))
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add records one observation, closing a batch when it fills.
func (b *BatchMeans) Add(x float64) {
	b.current.Add(x)
	if b.current.N() == b.batchSize {
		m := b.current.Mean()
		b.batches.Add(m)
		b.means = append(b.means, m)
		b.current = Summary{}
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int { return b.batches.N() }

// Mean returns the grand mean over completed batches.
func (b *BatchMeans) Mean() float64 { return b.batches.Mean() }

// CI returns the half-width of the confidence interval over batch means.
func (b *BatchMeans) CI(level float64) float64 { return b.batches.CI(level) }

// BatchMeanValues returns a copy of the completed batch means.
func (b *BatchMeans) BatchMeanValues() []float64 {
	return append([]float64(nil), b.means...)
}

// ---------------------------------------------------------------------------
// Histogram

// Histogram counts observations into equal-width bins over [Low, High);
// out-of-range values go to the underflow/overflow counters.
type Histogram struct {
	Low, High float64
	Counts    []int
	Under     int
	Over      int
	total     int
}

// NewHistogram creates a histogram with the given number of bins over
// [low, high).
func NewHistogram(low, high float64, bins int) *Histogram {
	if bins < 1 || high <= low {
		panic(fmt.Sprintf("stats: invalid histogram spec [%v,%v) bins=%d", low, high, bins))
	}
	return &Histogram{Low: low, High: high, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Low:
		h.Under++
	case x >= h.High:
		h.Over++
	default:
		i := int((x - h.Low) / (h.High - h.Low) * float64(len(h.Counts)))
		if i == len(h.Counts) { // boundary rounding
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of in-range observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// ---------------------------------------------------------------------------
// Quantiles of collected data

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (type-7, the R default). The input
// is not modified.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty slice")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: quantile p=%v out of [0,1]", p))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	h := p * float64(len(s)-1)
	i := int(math.Floor(h))
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := h - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac
}

// Autocorrelation returns the lag-k sample autocorrelation of xs.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || lag >= n {
		panic(fmt.Sprintf("stats: invalid lag %d for %d observations", lag, n))
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den += d * d
		if i+lag < n {
			num += d * (xs[i+lag] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
