package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if !almostEq(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	// Population variance 4, unbiased sample variance 32/7.
	if !almostEq(s.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("var = %v, want %v", s.Var(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.StdErr() != 0 || s.CI(0.95) != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Add(3)
	if s.Var() != 0 || s.CI(0.95) != 0 {
		t.Fatal("single observation should have zero variance and CI")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	r := xrand.New(1)
	var whole, a, b Summary
	for i := 0; i < 1000; i++ {
		x := r.NormFloat64()*3 + 10
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !almostEq(a.Mean(), whole.Mean(), 1e-9) {
		t.Fatalf("merged mean = %v, want %v", a.Mean(), whole.Mean())
	}
	if !almostEq(a.Var(), whole.Var(), 1e-9) {
		t.Fatalf("merged var = %v, want %v", a.Var(), whole.Var())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Add(3)
	saved := a
	a.Merge(&b) // merging empty is a no-op
	if a != saved {
		t.Fatal("merge with empty changed summary")
	}
	b.Merge(&a) // merging into empty copies
	if b.Mean() != 2 || b.N() != 2 {
		t.Fatal("merge into empty failed")
	}
}

func TestSummaryCIShrinks(t *testing.T) {
	r := xrand.New(2)
	var small, large Summary
	for i := 0; i < 10; i++ {
		small.Add(r.NormFloat64())
	}
	for i := 0; i < 1000; i++ {
		large.Add(r.NormFloat64())
	}
	if small.CI(0.95) <= large.CI(0.95) {
		t.Fatalf("CI did not shrink with n: %v <= %v", small.CI(0.95), large.CI(0.95))
	}
}

func TestSummaryCICoverage(t *testing.T) {
	// 95% t-interval over normal data should cover the true mean ~95% of
	// the time. With 400 trials, coverage in [0.90, 0.99] is acceptable.
	const trials, n, mu = 400, 20, 5.0
	covered := 0
	for trial := 0; trial < trials; trial++ {
		r := xrand.NewStream(7, uint64(trial))
		var s Summary
		for i := 0; i < n; i++ {
			s.Add(mu + 2*r.NormFloat64())
		}
		hw := s.CI(0.95)
		if math.Abs(s.Mean()-mu) <= hw {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.90 || frac > 0.99 {
		t.Fatalf("95%% CI coverage = %v, outside [0.90, 0.99]", frac)
	}
}

func TestTimeWeightedConstant(t *testing.T) {
	var w TimeWeighted
	w.Start(0, 2)
	w.Advance(10)
	if !almostEq(w.MeanAt(10), 2, 1e-12) {
		t.Fatalf("constant signal mean = %v, want 2", w.MeanAt(10))
	}
}

func TestTimeWeightedStep(t *testing.T) {
	var w TimeWeighted
	w.Start(0, 0)
	w.Set(4, 1) // value 0 on [0,4)
	w.Set(6, 3) // value 1 on [4,6)
	// value 3 on [6,10]
	got := w.MeanAt(10)
	want := (0.0*4 + 1.0*2 + 3.0*4) / 10
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("step mean = %v, want %v", got, want)
	}
	if w.Min() != 0 || w.Max() != 3 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestTimeWeightedNonZeroOrigin(t *testing.T) {
	var w TimeWeighted
	w.Start(100, 5)
	w.Set(110, 0)
	if !almostEq(w.MeanAt(120), 2.5, 1e-12) {
		t.Fatalf("mean = %v, want 2.5", w.MeanAt(120))
	}
}

func TestTimeWeightedBackwardsTimePanics(t *testing.T) {
	var w TimeWeighted
	w.Start(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	w.Set(4, 2)
}

func TestTimeWeightedIntegral(t *testing.T) {
	var w TimeWeighted
	w.Start(0, 1)
	w.Set(2, 5)
	if !almostEq(w.Integral(4), 1*2+5*2, 1e-12) {
		t.Fatalf("integral = %v, want 12", w.Integral(4))
	}
	// Querying before lastT returns the integral up to lastT only.
	if !almostEq(w.Integral(1), 2, 1e-12) {
		t.Fatalf("early integral = %v, want 2", w.Integral(1))
	}
}

func TestBatchMeans(t *testing.T) {
	b := NewBatchMeans(10)
	r := xrand.New(3)
	for i := 0; i < 1000; i++ {
		b.Add(4 + r.NormFloat64())
	}
	if b.Batches() != 100 {
		t.Fatalf("batches = %d, want 100", b.Batches())
	}
	if !almostEq(b.Mean(), 4, 0.15) {
		t.Fatalf("batch-means mean = %v, want ~4", b.Mean())
	}
	if b.CI(0.95) <= 0 {
		t.Fatal("batch-means CI should be positive")
	}
	if len(b.BatchMeanValues()) != 100 {
		t.Fatal("BatchMeanValues length mismatch")
	}
}

func TestBatchMeansPartialBatchIgnored(t *testing.T) {
	b := NewBatchMeans(10)
	for i := 0; i < 15; i++ {
		b.Add(1)
	}
	if b.Batches() != 1 {
		t.Fatalf("batches = %d, want 1 (partial batch not closed)", b.Batches())
	}
}

func TestBatchMeansValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBatchMeans(0) did not panic")
		}
	}()
	NewBatchMeans(0)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{-1, 0, 0.5, 5, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 0.5
		t.Fatalf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Fatal("mid/last bin counts wrong")
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d, want 7", h.Total())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %v, want 5", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q0.25 = %v, want 2", got)
	}
	// Input not modified.
	if xs[0] != 3 {
		t.Fatal("Quantile modified its input")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); !almostEq(got, 5, 1e-12) {
		t.Fatalf("interpolated median = %v, want 5", got)
	}
}

func TestAutocorrelation(t *testing.T) {
	// A strongly autocorrelated ramp has lag-1 autocorrelation near 1.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	if ac := Autocorrelation(xs, 1); ac < 0.9 {
		t.Fatalf("ramp lag-1 autocorrelation = %v, want > 0.9", ac)
	}
	if ac := Autocorrelation(xs, 0); !almostEq(ac, 1, 1e-12) {
		t.Fatalf("lag-0 autocorrelation = %v, want 1", ac)
	}
	// White noise should have small lag-1 autocorrelation.
	r := xrand.New(4)
	noise := make([]float64, 5000)
	for i := range noise {
		noise[i] = r.NormFloat64()
	}
	if ac := Autocorrelation(noise, 1); math.Abs(ac) > 0.05 {
		t.Fatalf("noise lag-1 autocorrelation = %v, want ~0", ac)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.95, 1.644854},
		{0.995, 2.575829},
		{0.025, -1.959964},
		{0.0001, -3.719016},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !almostEq(got, c.want, 1e-5) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	f := func(seed uint16) bool {
		p := (float64(seed%9998) + 1) / 10000
		return almostEq(NormalQuantile(p), -NormalQuantile(1-p), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct {
		p    float64
		df   int
		want float64
		tol  float64
	}{
		{0.975, 1, 12.7062, 1e-3},
		{0.975, 2, 4.30265, 1e-4},
		{0.975, 3, 3.18245, 5e-3},
		{0.975, 5, 2.57058, 2e-3},
		{0.975, 10, 2.22814, 1e-3},
		{0.975, 30, 2.04227, 1e-3},
		{0.975, 100, 1.98397, 1e-3},
		{0.95, 5, 2.01505, 2e-3},
		{0.95, 20, 1.72472, 1e-3},
		{0.995, 10, 3.16927, 5e-3},
	}
	for _, c := range cases {
		if got := TQuantile(c.p, c.df); !almostEq(got, c.want, c.tol) {
			t.Errorf("TQuantile(%v, %d) = %v, want %v", c.p, c.df, got, c.want)
		}
	}
}

func TestTQuantileApproachesNormal(t *testing.T) {
	z := NormalQuantile(0.975)
	tq := TQuantile(0.975, 10000)
	if !almostEq(z, tq, 1e-3) {
		t.Fatalf("t(df=10000) = %v should approach z = %v", tq, z)
	}
}

func TestTQuantileMedianZero(t *testing.T) {
	for _, df := range []int{1, 2, 3, 10, 50} {
		if got := TQuantile(0.5, df); !almostEq(got, 0, 1e-9) {
			t.Errorf("TQuantile(0.5, %d) = %v, want 0", df, got)
		}
	}
}

func TestTQuantilePanics(t *testing.T) {
	for _, bad := range []struct {
		p  float64
		df int
	}{{0.5, 0}, {0, 5}, {1, 5}, {-0.1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TQuantile(%v,%d) did not panic", bad.p, bad.df)
				}
			}()
			TQuantile(bad.p, bad.df)
		}()
	}
}

// Property: Summary.Mean equals the arithmetic mean for arbitrary inputs.
func TestSummaryMeanProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		var s Summary
		s.AddAll(xs)
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		return almostEq(s.Mean(), sum/float64(len(xs)), 1e-6*(1+math.Abs(sum)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSummaryAdd(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 1000))
	}
}

func BenchmarkTimeWeightedSet(b *testing.B) {
	var w TimeWeighted
	w.Start(0, 0)
	for i := 0; i < b.N; i++ {
		w.Set(float64(i), float64(i%5))
	}
}
