package stats

import (
	"fmt"
	"math"
)

// NormalQuantile returns the p-quantile of the standard normal distribution
// using the Acklam rational approximation (relative error < 1.15e-9 over
// the full open interval).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: normal quantile requires p in (0,1), got %v", p))
	}
	// Coefficients for the central and tail rational approximations.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// RegularizedIncompleteBeta returns I_x(a, b), the regularized incomplete
// beta function, computed with the Lentz continued-fraction expansion
// (Numerical Recipes, betacf).
func RegularizedIncompleteBeta(a, b, x float64) float64 {
	if x < 0 || x > 1 {
		panic(fmt.Sprintf("stats: incomplete beta requires x in [0,1], got %v", x))
	}
	if x == 0 {
		return 0
	}
	if x == 1 {
		return 1
	}
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x)
	}
	// Use the symmetry relation for faster convergence.
	frontSym := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / b
	return 1 - frontSym*betaCF(b, a, 1-x)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta function
// using the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-15
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// TCDF returns the cumulative distribution function of the Student-t
// distribution with df degrees of freedom evaluated at x.
func TCDF(x float64, df int) float64 {
	if df < 1 {
		panic(fmt.Sprintf("stats: t CDF requires df >= 1, got %d", df))
	}
	n := float64(df)
	if x == 0 {
		return 0.5
	}
	ib := RegularizedIncompleteBeta(n/2, 0.5, n/(n+x*x))
	if x > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// TQuantile returns the p-quantile of the Student-t distribution with df
// degrees of freedom. Exact closed forms are used for df 1 and 2; larger df
// invert TCDF by bisection seeded from the normal quantile, accurate to
// ~1e-10.
func TQuantile(p float64, df int) float64 {
	if df < 1 {
		panic(fmt.Sprintf("stats: t quantile requires df >= 1, got %d", df))
	}
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: t quantile requires p in (0,1), got %v", p))
	}
	switch df {
	case 1:
		return math.Tan(math.Pi * (p - 0.5))
	case 2:
		return 2 * (p - 0.5) * math.Sqrt(2/(4*p*(1-p)))
	}
	if p == 0.5 {
		return 0
	}
	// Bracket the root around the normal quantile; t quantiles exceed
	// normal quantiles in absolute value, so widen multiplicatively.
	z := NormalQuantile(p)
	lo, hi := z, z
	if p > 0.5 {
		lo, hi = 0, z*4+10
	} else {
		lo, hi = z*4-10, 0
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+math.Abs(lo)) {
			break
		}
	}
	return (lo + hi) / 2
}
