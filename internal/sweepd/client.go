package sweepd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client speaks the coordinator protocol over HTTP; both workers and the
// submitting CLI use it.
type Client struct {
	base string
	http *http.Client
}

// ErrLeaseGone reports that the coordinator no longer recognizes a lease
// (it expired or was completed by another worker); the holder must abandon
// the partition rather than retry.
var ErrLeaseGone = errors.New("sweepd: lease gone")

// NewClient opens a client for the coordinator at base (e.g.
// "http://127.0.0.1:8080"). A nil httpClient uses a dedicated client with
// a conservative timeout.
func NewClient(base string, httpClient *http.Client) (*Client, error) {
	if base == "" {
		return nil, errors.New("sweepd: coordinator URL must not be empty")
	}
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}, nil
}

// Base returns the coordinator's base URL.
func (c *Client) Base() string { return c.base }

// call POSTs (or GETs, body nil) one protocol message and decodes the
// response into out (when non-nil). Non-2xx answers decode the protocol
// error body; 404/409 on lease endpoints surface as ErrLeaseGone.
func (c *Client) call(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("sweepd: encoding %s: %w", path, err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("sweepd: %s: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("sweepd: %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("sweepd: reading %s response: %w", path, err)
	}
	if resp.StatusCode == http.StatusConflict || resp.StatusCode == http.StatusNotFound {
		if strings.Contains(path, "/v1/lease/") {
			return fmt.Errorf("%w: %s", ErrLeaseGone, strings.TrimSpace(string(data)))
		}
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e errorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("sweepd: %s: %s", path, e.Error)
		}
		return fmt.Errorf("sweepd: %s: unexpected status %s", path, resp.Status)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("sweepd: decoding %s response: %w", path, err)
	}
	return nil
}

// Submit sends a sweep and returns its id.
func (c *Client) Submit(req SubmitRequest) (string, error) {
	req.Version = ProtocolVersion
	var resp SubmitResponse
	if err := c.call(http.MethodPost, "/v1/sweeps", req, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// Lease polls for work.
func (c *Client) Lease(worker string) (LeaseResponse, error) {
	var resp LeaseResponse
	err := c.call(http.MethodPost, "/v1/lease", LeaseRequest{Version: ProtocolVersion, Worker: worker}, &resp)
	if err != nil {
		return LeaseResponse{}, err
	}
	if resp.Version != ProtocolVersion {
		return LeaseResponse{}, fmt.Errorf("sweepd: coordinator speaks protocol %d, want %d", resp.Version, ProtocolVersion)
	}
	return resp, nil
}

// Heartbeat renews a lease. ErrLeaseGone means the coordinator reclaimed
// it and the worker must abandon the partition.
func (c *Client) Heartbeat(leaseID string) error {
	return c.call(http.MethodPost, "/v1/lease/"+leaseID+"/heartbeat", struct{}{}, nil)
}

// Results submits a lease's result set and the worker's cost table.
func (c *Client) Results(leaseID string, sub ResultSubmission) error {
	sub.Version = ProtocolVersion
	return c.call(http.MethodPost, "/v1/lease/"+leaseID+"/results", sub, nil)
}

// Fail reports that a lease could not be run.
func (c *Client) Fail(leaseID, msg string) error {
	return c.call(http.MethodPost, "/v1/lease/"+leaseID+"/fail", FailRequest{Version: ProtocolVersion, Error: msg}, nil)
}

// Ready reports whether the coordinator answers its readiness probe —
// false while it replays its journal after a restart (and on transport
// errors, which pollers treat the same way: not ready yet).
func (c *Client) Ready() bool {
	resp, err := c.http.Get(c.base + ReadyPath)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	return resp.StatusCode == http.StatusOK
}

// Status fetches the whole-service status.
func (c *Client) Status() (CoordinatorStatus, error) {
	var st CoordinatorStatus
	err := c.call(http.MethodGet, "/v1/status", nil, &st)
	return st, err
}

// SweepStatus fetches one sweep's status.
func (c *Client) SweepStatus(id string) (SweepStatus, error) {
	var st SweepStatus
	err := c.call(http.MethodGet, "/v1/sweeps/"+id, nil, &st)
	return st, err
}

// SweepResults fetches a sweep's completed scenarios so far.
func (c *Client) SweepResults(id string) (ResultsResponse, error) {
	var resp ResultsResponse
	err := c.call(http.MethodGet, "/v1/sweeps/"+id+"/results", nil, &resp)
	return resp, err
}
