package sweepd

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// Default coordinator parameters; Options fields of zero value fall back
// to these.
const (
	DefaultLeaseTTL   = 30 * time.Second
	DefaultPartitions = 8
	DefaultAttempts   = 5
)

// Options parameterizes a Coordinator.
type Options struct {
	// LeaseTTL is the heartbeat window: a lease not renewed within it is
	// reclaimed and its partition requeued.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many times one partition may be granted
	// before its sweep fails (a poisoned scenario must not loop forever).
	MaxAttempts int
	// DefaultPartitions is the lease-partition count for sweeps that do
	// not request their own.
	DefaultPartitions int
	// Cache optionally backs the coordinator-hosted remote result cache;
	// nil hosts a fresh in-memory backend.
	Cache core.CacheBackend
	// Clock overrides time.Now for tests.
	Clock func() time.Time
	// Log receives progress lines (nil discards them).
	Log func(format string, args ...any)
}

// pending is a partition awaiting a worker.
type pending struct {
	shard    shard.Shard
	attempts int
}

// lease is one granted partition.
type lease struct {
	id       string
	sweepID  string
	worker   string
	part     pending
	started  time.Time
	deadline time.Time
}

// sweep is the coordinator's state for one submitted sweep.
type sweep struct {
	id       string
	manifest *shard.Manifest // the coordinator's own (re-planned) partition
	state    string
	errMsg   string
	queue    []pending
	active   int // leases currently out for this sweep
	sets     []*shard.ResultSet
	covered  map[int]bool
	merged   []core.Result // set when state == StateDone
}

// Coordinator owns sweep state: it re-plans submitted manifests against
// its cost model, leases partitions, reclaims expired leases, replans
// merge gaps, and merges completed sweeps. All methods are safe for
// concurrent use; Server exposes them over HTTP.
type Coordinator struct {
	opts  Options
	cache core.CacheBackend

	mu        sync.Mutex
	sweeps    map[string]*sweep
	order     []string // sweep ids in submission order
	leases    map[string]*lease
	costs     core.CostTable
	nextSweep int
	nextLease int
	expired   int
	requeues  int
	replans   int
	draining  bool
}

// NewCoordinator builds a coordinator; zero-value options take the
// package defaults.
func NewCoordinator(opts Options) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultAttempts
	}
	if opts.DefaultPartitions <= 0 {
		opts.DefaultPartitions = DefaultPartitions
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	cache := opts.Cache
	if cache == nil {
		cache = core.NewMemoryBackend()
	}
	return &Coordinator{
		opts:   opts,
		cache:  cache,
		sweeps: make(map[string]*sweep),
		leases: make(map[string]*lease),
		costs:  core.CostTable{},
	}
}

// Cache returns the backend behind the coordinator's remote result cache.
func (c *Coordinator) Cache() core.CacheBackend { return c.cache }

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Log != nil {
		c.opts.Log(format, args...)
	}
}

// Submit validates and admits a sweep. The manifest's own partition is
// discarded: the batch is re-planned into the requested partition count
// with the coordinator's current cost table as weights (placement
// independence makes this safe; cost weighting makes it fast).
func (c *Coordinator) Submit(req SubmitRequest) (SubmitResponse, error) {
	if req.Version != ProtocolVersion {
		return SubmitResponse{}, fmt.Errorf("sweepd: submit version %d, want %d", req.Version, ProtocolVersion)
	}
	if req.Manifest == nil {
		return SubmitResponse{}, errors.New("sweepd: submit carries no manifest")
	}
	if err := req.Manifest.Validate(); err != nil {
		return SubmitResponse{}, err
	}
	parts := req.Partitions
	if parts <= 0 {
		parts = c.opts.DefaultPartitions
	}
	scenarios := req.Manifest.Scenarios()
	if len(scenarios) == 0 {
		return SubmitResponse{}, errors.New("sweepd: sweep has no scenarios")
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return SubmitResponse{}, errors.New("sweepd: coordinator is draining")
	}
	weight := c.weightLocked(req.Manifest.Runner.Methods)
	m, err := shard.NewManifestWeighted(req.Manifest.Experiment, req.Manifest.Runner, scenarios, parts, weight)
	if err != nil {
		return SubmitResponse{}, err
	}
	m.Extra = req.Manifest.Extra

	c.nextSweep++
	sw := &sweep{
		id:       fmt.Sprintf("s%d", c.nextSweep),
		manifest: m,
		state:    StateRunning,
		covered:  make(map[int]bool, m.Total),
	}
	for _, s := range m.Shards {
		if len(s.Items) > 0 {
			sw.queue = append(sw.queue, pending{shard: s})
		}
	}
	c.sweeps[sw.id] = sw
	c.order = append(c.order, sw.id)
	c.logf("sweep %s admitted: experiment=%q scenarios=%d partitions=%d",
		sw.id, m.Experiment, m.Total, len(sw.queue))
	return SubmitResponse{ID: sw.id}, nil
}

// weightLocked builds a WeightFunc from the current cost table, or nil
// (count balancing) when the table has no samples for these methods yet.
// The table is snapshotted so one plan prices consistently even as new
// worker samples merge in.
func (c *Coordinator) weightLocked(methods []string) shard.WeightFunc {
	ids, err := core.EstimatorIDs(methods...)
	if err != nil || len(c.costs) == 0 {
		return nil
	}
	table := copyCosts(c.costs)
	sampled := false
	for _, id := range ids {
		if _, ok := table[id]; ok {
			sampled = true
			break
		}
	}
	if !sampled {
		return nil
	}
	return func(s core.Scenario) float64 {
		return table.ScenarioSeconds(s.Config, ids)
	}
}

// Lease grants the next queued partition, preferring older sweeps.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	if req.Version != ProtocolVersion {
		return LeaseResponse{}, fmt.Errorf("sweepd: lease version %d, want %d", req.Version, ProtocolVersion)
	}
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	for _, id := range c.order {
		sw := c.sweeps[id]
		if sw.state != StateRunning || len(sw.queue) == 0 {
			continue
		}
		part := sw.queue[0]
		sw.queue = sw.queue[1:]
		sw.active++
		c.nextLease++
		l := &lease{
			id:       fmt.Sprintf("l%d", c.nextLease),
			sweepID:  sw.id,
			worker:   req.Worker,
			part:     part,
			started:  now,
			deadline: now.Add(c.opts.LeaseTTL),
		}
		c.leases[l.id] = l
		c.logf("lease %s: sweep %s shard %d (%d scenarios) -> worker %q",
			l.id, sw.id, part.shard.Index, len(part.shard.Items), req.Worker)
		runner := sw.manifest.Runner
		sh := part.shard
		return LeaseResponse{
			Version:    ProtocolVersion,
			Status:     LeaseWork,
			LeaseID:    l.id,
			SweepID:    sw.id,
			Runner:     &runner,
			Shard:      &sh,
			TTLSeconds: c.opts.LeaseTTL.Seconds(),
			CachePath:  CachePath,
		}, nil
	}
	if c.draining {
		return LeaseResponse{Version: ProtocolVersion, Status: LeaseBye}, nil
	}
	return LeaseResponse{Version: ProtocolVersion, Status: LeaseWait}, nil
}

// Heartbeat extends a lease's deadline by one TTL. An unknown (already
// reclaimed) lease errors so the worker abandons the partition instead of
// racing the replacement worker for submission.
func (c *Coordinator) Heartbeat(leaseID string) error {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	l, ok := c.leases[leaseID]
	if !ok {
		return fmt.Errorf("sweepd: lease %s not found (expired or completed)", leaseID)
	}
	l.deadline = now.Add(c.opts.LeaseTTL)
	return nil
}

// Results accepts a worker's submission for a lease: results are folded
// into the sweep, the worker's cost table is merged into the planning
// model, and any scenarios of the partition the submission did not cover
// are re-planned into a recovery partition.
func (c *Coordinator) Results(leaseID string, sub ResultSubmission) error {
	if sub.Version != ProtocolVersion {
		return fmt.Errorf("sweepd: results version %d, want %d", sub.Version, ProtocolVersion)
	}
	if sub.Results == nil {
		return errors.New("sweepd: submission carries no result set")
	}
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	l, ok := c.leases[leaseID]
	if !ok {
		return fmt.Errorf("sweepd: lease %s not found (expired or completed)", leaseID)
	}
	sw := c.sweeps[l.sweepID]
	delete(c.leases, leaseID)
	sw.active--

	c.costs = c.costs.Merge(sub.Costs)
	sw.sets = append(sw.sets, sub.Results)
	for _, item := range sub.Results.Results {
		if item.Index >= 0 && item.Index < sw.manifest.Total {
			sw.covered[item.Index] = true
		}
	}
	// A partial submission (worker gave up mid-shard) leaves a gap inside
	// this partition; replan exactly those indices as a recovery partition.
	var gap []int
	for _, it := range l.part.shard.Items {
		if !sw.covered[it.Index] {
			gap = append(gap, it.Index)
		}
	}
	if len(gap) > 0 {
		if err := c.requeueGapLocked(sw, l.part, gap); err != nil {
			return err
		}
	}
	c.logf("lease %s: sweep %s shard %d done (%d results, %d missing)",
		leaseID, sw.id, l.part.shard.Index, len(sub.Results.Results), len(gap))
	c.maybeFinishLocked(sw)
	return nil
}

// Fail reports a lease the worker could not run; the partition requeues
// (bounded by MaxAttempts).
func (c *Coordinator) Fail(leaseID string, req FailRequest) error {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	l, ok := c.leases[leaseID]
	if !ok {
		return fmt.Errorf("sweepd: lease %s not found (expired or completed)", leaseID)
	}
	sw := c.sweeps[l.sweepID]
	delete(c.leases, leaseID)
	sw.active--
	c.logf("lease %s: worker %q failed sweep %s shard %d: %s",
		leaseID, l.worker, sw.id, l.part.shard.Index, req.Error)
	c.requeueLocked(sw, l.part, req.Error)
	c.maybeFinishLocked(sw)
	return nil
}

// reapLocked reclaims expired leases: each reclaimed partition re-enters
// its sweep's queue with one more attempt on the clock.
func (c *Coordinator) reapLocked(now time.Time) {
	for id, l := range c.leases {
		if now.After(l.deadline) {
			sw := c.sweeps[l.sweepID]
			delete(c.leases, id)
			sw.active--
			c.expired++
			c.logf("lease %s: worker %q missed its deadline; requeueing sweep %s shard %d",
				id, l.worker, sw.id, l.part.shard.Index)
			c.requeueLocked(sw, l.part, "lease expired")
			c.maybeFinishLocked(sw)
		}
	}
}

// requeueLocked puts a partition back in the queue, failing the sweep if
// the partition has exhausted its attempts. Scenarios already covered by
// other submissions are dropped from the requeued partition so recovery
// never re-runs completed work.
func (c *Coordinator) requeueLocked(sw *sweep, part pending, reason string) {
	part.attempts++
	if part.attempts >= c.opts.MaxAttempts {
		sw.state = StateFailed
		sw.errMsg = fmt.Sprintf("partition %d failed %d times (last: %s)",
			part.shard.Index, part.attempts, reason)
		c.logf("sweep %s failed: %s", sw.id, sw.errMsg)
		return
	}
	var remaining []int
	for _, it := range part.shard.Items {
		if !sw.covered[it.Index] {
			remaining = append(remaining, it.Index)
		}
	}
	if len(remaining) == 0 {
		return // everything landed elsewhere; nothing to redo
	}
	if len(remaining) != len(part.shard.Items) {
		shards, err := shard.Replan(sw.manifest, remaining, 1)
		if err != nil {
			sw.state = StateFailed
			sw.errMsg = err.Error()
			return
		}
		part.shard.Items = shards[0].Items
	}
	c.requeues++
	sw.queue = append(sw.queue, part)
}

// requeueGapLocked turns a merge gap (missing global indices) into a
// recovery partition via shard.Replan — the exact-missing-indices
// recovery path.
func (c *Coordinator) requeueGapLocked(sw *sweep, from pending, missing []int) error {
	shards, err := shard.Replan(sw.manifest, missing, 1)
	if err != nil {
		sw.state = StateFailed
		sw.errMsg = err.Error()
		return err
	}
	c.replans++
	from.shard.Items = shards[0].Items
	c.requeueLocked(sw, from, "partial results")
	return nil
}

// maybeFinishLocked merges the sweep once nothing is queued or leased.
// A merge gap (defensive: incremental coverage should have caught it)
// re-plans the missing indices instead of failing.
func (c *Coordinator) maybeFinishLocked(sw *sweep) {
	if sw.state != StateRunning || len(sw.queue) > 0 || sw.active > 0 {
		return
	}
	results, err := shard.Merge(sw.manifest, sw.sets)
	if err == nil {
		sw.merged = results
		sw.state = StateDone
		c.logf("sweep %s complete: %d scenarios merged", sw.id, sw.manifest.Total)
		return
	}
	var inc *shard.IncompleteError
	if errors.As(err, &inc) {
		shards, rerr := shard.Replan(sw.manifest, inc.Missing, 1)
		if rerr == nil {
			c.replans++
			c.requeueLocked(sw, pending{shard: shards[0]}, "merge gap")
			return
		}
		err = rerr
	}
	sw.state = StateFailed
	sw.errMsg = err.Error()
	c.logf("sweep %s failed at merge: %v", sw.id, err)
}

// SweepStatus reports one sweep.
func (c *Coordinator) SweepStatus(id string) (SweepStatus, error) {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	sw, ok := c.sweeps[id]
	if !ok {
		return SweepStatus{}, fmt.Errorf("sweepd: sweep %s not found", id)
	}
	return c.sweepStatusLocked(sw), nil
}

func (c *Coordinator) sweepStatusLocked(sw *sweep) SweepStatus {
	return SweepStatus{
		ID:         sw.id,
		Experiment: sw.manifest.Experiment,
		State:      sw.state,
		Total:      sw.manifest.Total,
		Completed:  len(sw.covered),
		Queued:     len(sw.queue),
		Leased:     sw.active,
		Error:      sw.errMsg,
	}
}

// Status reports the whole service.
func (c *Coordinator) Status() CoordinatorStatus {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	st := CoordinatorStatus{
		Version:       ProtocolVersion,
		ExpiredLeases: c.expired,
		Requeues:      c.requeues,
		Replans:       c.replans,
	}
	for _, id := range c.order {
		st.Sweeps = append(st.Sweeps, c.sweepStatusLocked(c.sweeps[id]))
	}
	for _, l := range c.leases {
		st.Leases = append(st.Leases, LeaseInfo{
			ID:        l.id,
			SweepID:   l.sweepID,
			Worker:    l.worker,
			Scenarios: len(l.part.shard.Items),
			StartedAt: l.started,
			Deadline:  l.deadline,
		})
	}
	sort.Slice(st.Leases, func(i, j int) bool { return st.Leases[i].ID < st.Leases[j].ID })
	return st
}

// SweepResults reports a sweep's completed scenarios so far, in global
// index order; Complete is true once the sweep has merged.
func (c *Coordinator) SweepResults(id string) (ResultsResponse, error) {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	sw, ok := c.sweeps[id]
	if !ok {
		return ResultsResponse{}, fmt.Errorf("sweepd: sweep %s not found", id)
	}
	resp := ResultsResponse{
		Version:  ProtocolVersion,
		State:    sw.state,
		Error:    sw.errMsg,
		Complete: sw.state == StateDone,
	}
	byIndex := make(map[int]shard.ResultItem, len(sw.covered))
	for _, rs := range sw.sets {
		for _, item := range rs.Results {
			if _, dup := byIndex[item.Index]; !dup {
				byIndex[item.Index] = item
			}
		}
	}
	indices := make([]int, 0, len(byIndex))
	for i := range byIndex {
		indices = append(indices, i)
	}
	sort.Ints(indices)
	for _, i := range indices {
		resp.Results = append(resp.Results, byIndex[i])
	}
	return resp, nil
}

// Merged returns a completed sweep's merged results (the same slice shape
// core.Runner.RunAll produces) — the in-process path tests and benchmarks
// use to skip the client-side re-merge.
func (c *Coordinator) Merged(id string) ([]core.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, ok := c.sweeps[id]
	if !ok {
		return nil, fmt.Errorf("sweepd: sweep %s not found", id)
	}
	if sw.state != StateDone {
		return nil, fmt.Errorf("sweepd: sweep %s is %s, not done", id, sw.state)
	}
	return sw.merged, nil
}

// CostTable snapshots the coordinator's merged planning model.
func (c *Coordinator) CostTable() core.CostTable {
	c.mu.Lock()
	defer c.mu.Unlock()
	return copyCosts(c.costs)
}

// copyCosts clones a cost table (CostTable.Merge mutates its receiver, so
// callers that need a stable snapshot copy first).
func copyCosts(t core.CostTable) core.CostTable {
	out := make(core.CostTable, len(t))
	for id, s := range t {
		out[id] = s
	}
	return out
}

// Drain stops admitting sweeps and tells idle workers to exit; running
// leases finish normally.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.draining = true
}
