package sweepd

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// Default coordinator parameters; Options fields of zero value fall back
// to these.
const (
	DefaultLeaseTTL   = 30 * time.Second
	DefaultPartitions = 8
	DefaultAttempts   = 5
)

// Options parameterizes a Coordinator.
type Options struct {
	// LeaseTTL is the heartbeat window: a lease not renewed within it is
	// reclaimed and its partition requeued.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many times one partition may be granted
	// before its sweep fails (a poisoned scenario must not loop forever).
	MaxAttempts int
	// DefaultPartitions is the lease-partition count for sweeps that do
	// not request their own.
	DefaultPartitions int
	// StateDir roots the coordinator's durable state (write-ahead journal,
	// accepted result sets, and — unless Cache overrides it — a persistent
	// file cache). Empty runs the coordinator purely in memory. Only Open
	// honors it; NewCoordinator ignores the field.
	StateDir string
	// NoSpeculation disables shadow leases for predicted stragglers.
	NoSpeculation bool
	// CacheEntries bounds the default coordinator-hosted cache backend
	// (0 = core.DefaultLRUEntries). Ignored when Cache or a StateDir file
	// cache is in effect.
	CacheEntries int
	// Cache optionally backs the coordinator-hosted remote result cache;
	// nil hosts an LRU-bounded in-memory backend (or, under Open with a
	// StateDir, a persistent file backend).
	Cache core.CacheBackend
	// Clock overrides time.Now for tests.
	Clock func() time.Time
	// Log receives progress lines (nil discards them).
	Log func(format string, args ...any)
}

// pending is a partition awaiting a worker.
type pending struct {
	shard    shard.Shard
	attempts int
}

// lease is one granted partition.
type lease struct {
	id       string
	sweepID  string
	worker   string
	part     pending
	started  time.Time
	deadline time.Time
	// speculative marks a shadow lease issued against a predicted
	// straggler; rival links the two leases racing the same partition
	// (each holds the other's id while both live).
	speculative bool
	rival       string
}

// sweep is the coordinator's state for one submitted sweep.
type sweep struct {
	id       string
	manifest *shard.Manifest // the coordinator's own (re-planned) partition
	state    string
	errMsg   string
	queue    []pending
	active   int // leases currently out for this sweep
	sets     []*shard.ResultSet
	refs     []string // journal references of the accepted sets
	covered  map[int]bool
	merged   []core.Result // set when state == StateDone
	counters sweepCounters
}

// Coordinator owns sweep state: it re-plans submitted manifests against
// its cost model, leases partitions, reclaims expired leases, replans
// merge gaps, and merges completed sweeps. All methods are safe for
// concurrent use; Server exposes them over HTTP.
//
// With a journal attached (Open with a StateDir), every state transition
// is appended to the write-ahead journal before the in-memory state
// changes, and Recover rebuilds the coordinator from the journal after a
// restart — byte-identically, because content-derived seeds make
// re-planning the uncovered remainder produce exactly the results the
// lost leases would have.
type Coordinator struct {
	opts    Options
	cache   core.CacheBackend
	journal *Journal
	ready   atomic.Bool

	mu        sync.Mutex
	sweeps    map[string]*sweep
	order     []string // sweep ids in submission order
	leases    map[string]*lease
	costs     core.CostTable
	nextSweep int
	nextLease int
	draining  bool
}

// NewCoordinator builds a purely in-memory coordinator; zero-value
// options take the package defaults. Use Open for a durable one.
func NewCoordinator(opts Options) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultAttempts
	}
	if opts.DefaultPartitions <= 0 {
		opts.DefaultPartitions = DefaultPartitions
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	cache := opts.Cache
	if cache == nil {
		cache = core.NewLRUBackend(opts.CacheEntries)
	}
	c := &Coordinator{
		opts:   opts,
		cache:  cache,
		sweeps: make(map[string]*sweep),
		leases: make(map[string]*lease),
		costs:  core.CostTable{},
	}
	c.ready.Store(true)
	return c
}

// Open builds a coordinator whose state survives restarts: a write-ahead
// journal and accepted result sets live under opts.StateDir, and (unless
// opts.Cache overrides it) the hosted result cache persists there too.
// The coordinator starts not ready — call Recover to replay the journal
// before serving leases. An empty StateDir degrades to NewCoordinator.
func Open(opts Options) (*Coordinator, error) {
	if opts.StateDir == "" {
		return NewCoordinator(opts), nil
	}
	j, err := OpenJournal(opts.StateDir)
	if err != nil {
		return nil, err
	}
	if opts.Cache == nil {
		fb, err := core.NewFileBackend(filepath.Join(opts.StateDir, "cache"))
		if err != nil {
			j.Close()
			return nil, err
		}
		opts.Cache = fb
	}
	c := NewCoordinator(opts)
	c.journal = j
	c.ready.Store(false)
	return c, nil
}

// Cache returns the backend behind the coordinator's remote result cache.
func (c *Coordinator) Cache() core.CacheBackend { return c.cache }

// Ready reports whether the coordinator has finished journal replay (a
// journal-less coordinator is ready immediately). The HTTP /v1/readyz
// endpoint and the lease path consult it.
func (c *Coordinator) Ready() bool { return c.ready.Load() }

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Log != nil {
		c.opts.Log(format, args...)
	}
}

// appendLocked journals one record (nil without a journal); the caller
// holds c.mu and must not apply the transition if this fails.
func (c *Coordinator) appendLocked(rec record) error {
	if c.journal == nil {
		return nil
	}
	return c.journal.Append(rec)
}

// appendBestEffortLocked journals one record, degrading a journal error
// to a log line — for transitions with no caller to bounce (lease
// reaping, sweep completion). A lost record here costs recovery counter
// precision, never result correctness: replay re-derives the queue from
// coverage, not from these records.
func (c *Coordinator) appendBestEffortLocked(rec record) {
	if err := c.appendLocked(rec); err != nil {
		c.logf("journal: dropping %s record: %v", rec.Kind, err)
	}
}

// Submit validates and admits a sweep. The manifest's own partition is
// discarded: the batch is re-planned into the requested partition count
// with the coordinator's current cost table as weights (placement
// independence makes this safe; cost weighting makes it fast).
func (c *Coordinator) Submit(req SubmitRequest) (SubmitResponse, error) {
	if req.Version != ProtocolVersion {
		return SubmitResponse{}, fmt.Errorf("sweepd: submit version %d, want %d", req.Version, ProtocolVersion)
	}
	if req.Manifest == nil {
		return SubmitResponse{}, errors.New("sweepd: submit carries no manifest")
	}
	if err := req.Manifest.Validate(); err != nil {
		return SubmitResponse{}, err
	}
	if !c.ready.Load() {
		return SubmitResponse{}, errors.New("sweepd: coordinator is recovering; retry shortly")
	}
	parts := req.Partitions
	if parts <= 0 {
		parts = c.opts.DefaultPartitions
	}
	scenarios := req.Manifest.Scenarios()
	if len(scenarios) == 0 {
		return SubmitResponse{}, errors.New("sweepd: sweep has no scenarios")
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return SubmitResponse{}, errors.New("sweepd: coordinator is draining")
	}
	weight := c.weightLocked(req.Manifest.Runner.Methods)
	m, err := shard.NewManifestWeighted(req.Manifest.Experiment, req.Manifest.Runner, scenarios, parts, weight)
	if err != nil {
		return SubmitResponse{}, err
	}
	m.Extra = req.Manifest.Extra

	id := fmt.Sprintf("s%d", c.nextSweep+1)
	if err := c.appendLocked(record{Kind: recSubmit, Sweep: id, Manifest: m}); err != nil {
		return SubmitResponse{}, err
	}
	c.nextSweep++
	sw := &sweep{
		id:       id,
		manifest: m,
		state:    StateRunning,
		covered:  make(map[int]bool, m.Total),
	}
	for _, s := range m.Shards {
		if len(s.Items) > 0 {
			sw.queue = append(sw.queue, pending{shard: s})
		}
	}
	c.sweeps[sw.id] = sw
	c.order = append(c.order, sw.id)
	c.logf("sweep %s admitted: experiment=%q scenarios=%d partitions=%d",
		sw.id, m.Experiment, m.Total, len(sw.queue))
	return SubmitResponse{ID: sw.id}, nil
}

// weightLocked builds a WeightFunc from the current cost table, or nil
// (count balancing) when the table has no samples for these methods yet.
// The table is snapshotted so one plan prices consistently even as new
// worker samples merge in.
func (c *Coordinator) weightLocked(methods []string) shard.WeightFunc {
	ids, err := core.EstimatorIDs(methods...)
	if err != nil || len(c.costs) == 0 {
		return nil
	}
	table := copyCosts(c.costs)
	sampled := false
	for _, id := range ids {
		if _, ok := table[id]; ok {
			sampled = true
			break
		}
	}
	if !sampled {
		return nil
	}
	return func(s core.Scenario) float64 {
		return table.ScenarioSeconds(s.Config, ids)
	}
}

// grantLocked journals and issues one lease for a partition. spec marks a
// shadow lease; rivalID links it to the lease it races.
func (c *Coordinator) grantLocked(sw *sweep, part pending, worker string, now time.Time, spec bool, rivalID string) (*lease, error) {
	id := fmt.Sprintf("l%d", c.nextLease+1)
	if err := c.appendLocked(record{
		Kind: recLease, Sweep: sw.id, Lease: id, Worker: worker,
		ShardIndex: part.shard.Index, Speculative: spec,
	}); err != nil {
		return nil, err
	}
	c.nextLease++
	l := &lease{
		id:          id,
		sweepID:     sw.id,
		worker:      worker,
		part:        part,
		started:     now,
		deadline:    now.Add(c.opts.LeaseTTL),
		speculative: spec,
		rival:       rivalID,
	}
	c.leases[id] = l
	sw.active++
	if spec {
		sw.counters.SpecIssued++
	}
	return l, nil
}

// leaseResponseLocked renders a granted lease as the wire answer.
func (c *Coordinator) leaseResponseLocked(sw *sweep, l *lease) LeaseResponse {
	runner := sw.manifest.Runner
	sh := l.part.shard
	return LeaseResponse{
		Version:    ProtocolVersion,
		Status:     LeaseWork,
		LeaseID:    l.id,
		SweepID:    sw.id,
		Runner:     &runner,
		Shard:      &sh,
		TTLSeconds: c.opts.LeaseTTL.Seconds(),
		CachePath:  CachePath,
	}
}

// Lease grants the next queued partition, preferring older sweeps. With
// nothing queued it may instead issue a speculative shadow lease against
// a predicted straggler (see speculateLocked). A draining coordinator
// answers LeaseBye immediately — in-flight leases may still submit, but
// no new work leaves the queue. A recovering coordinator answers
// LeaseWait until replay finishes.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	if req.Version != ProtocolVersion {
		return LeaseResponse{}, fmt.Errorf("sweepd: lease version %d, want %d", req.Version, ProtocolVersion)
	}
	if !c.ready.Load() {
		return LeaseResponse{Version: ProtocolVersion, Status: LeaseWait}, nil
	}
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	if c.draining {
		return LeaseResponse{Version: ProtocolVersion, Status: LeaseBye}, nil
	}
	for _, id := range c.order {
		sw := c.sweeps[id]
		if sw.state != StateRunning || len(sw.queue) == 0 {
			continue
		}
		part := sw.queue[0]
		l, err := c.grantLocked(sw, part, req.Worker, now, false, "")
		if err != nil {
			return LeaseResponse{}, err
		}
		sw.queue = sw.queue[1:]
		c.logf("lease %s: sweep %s shard %d (%d scenarios) -> worker %q",
			l.id, sw.id, part.shard.Index, len(part.shard.Items), req.Worker)
		return c.leaseResponseLocked(sw, l), nil
	}
	if !c.opts.NoSpeculation {
		if resp, ok, err := c.speculateLocked(req.Worker, now); err != nil {
			return LeaseResponse{}, err
		} else if ok {
			return resp, nil
		}
	}
	return LeaseResponse{Version: ProtocolVersion, Status: LeaseWait}, nil
}

// speculateLocked re-issues a straggling lease's partition to an idle
// worker: when the cost model predicts the uncovered remainder of an
// active lease needs more time than remains before its deadline, a
// shadow lease races the original. Whichever submission lands first
// wins; the other lease is discarded and its late submission bounces as
// ErrLeaseGone, which the worker drops idempotently (content-derived
// seeds make the duplicate results identical anyway). At most one shadow
// per lease, never against the same worker's own lease, and only while
// the cost table actually predicts (an unsampled table predicts zero and
// never speculates).
func (c *Coordinator) speculateLocked(worker string, now time.Time) (LeaseResponse, bool, error) {
	ids := make([]string, 0, len(c.leases))
	for id := range c.leases {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		l := c.leases[id]
		if l.rival != "" || l.worker == worker {
			continue
		}
		sw := c.sweeps[l.sweepID]
		if sw == nil || sw.state != StateRunning {
			continue
		}
		predicted := c.predictRemainingLocked(sw, l.part)
		if predicted <= 0 || predicted <= l.deadline.Sub(now).Seconds() {
			continue
		}
		shadow, err := c.grantLocked(sw, l.part, worker, now, true, l.id)
		if err != nil {
			return LeaseResponse{}, false, err
		}
		l.rival = shadow.id
		c.logf("lease %s: speculating sweep %s shard %d against straggler %s (predicted %.1fs, %.1fs left) -> worker %q",
			shadow.id, sw.id, l.part.shard.Index, l.id, predicted, l.deadline.Sub(now).Seconds(), worker)
		return c.leaseResponseLocked(sw, shadow), true, nil
	}
	return LeaseResponse{}, false, nil
}

// predictRemainingLocked prices the uncovered scenarios of a leased
// partition with the coordinator's cost table (seconds; 0 when the table
// has no samples for the sweep's estimators).
func (c *Coordinator) predictRemainingLocked(sw *sweep, part pending) float64 {
	ids, err := core.EstimatorIDs(sw.manifest.Runner.Methods...)
	if err != nil {
		return 0
	}
	total := 0.0
	for _, it := range part.shard.Items {
		if sw.covered[it.Index] {
			continue
		}
		total += c.costs.ScenarioSeconds(it.Scenario().Config, ids)
	}
	return total
}

// Heartbeat extends a lease's deadline by one TTL. An unknown (already
// reclaimed) lease errors so the worker abandons the partition instead of
// racing the replacement worker for submission.
func (c *Coordinator) Heartbeat(leaseID string) error {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	l, ok := c.leases[leaseID]
	if !ok {
		return fmt.Errorf("sweepd: lease %s not found (expired or completed)", leaseID)
	}
	l.deadline = now.Add(c.opts.LeaseTTL)
	return nil
}

// Results accepts a worker's submission for a lease: the result set is
// persisted and journaled by reference, folded into the sweep, the
// worker's cost table merges into the planning model, and any scenarios
// of the partition the submission did not cover are re-planned into a
// recovery partition. If a rival (speculative) lease is racing the same
// partition, the first submission wins and the rival is discarded — its
// own submission will find its lease gone.
func (c *Coordinator) Results(leaseID string, sub ResultSubmission) error {
	if sub.Version != ProtocolVersion {
		return fmt.Errorf("sweepd: results version %d, want %d", sub.Version, ProtocolVersion)
	}
	if sub.Results == nil {
		return errors.New("sweepd: submission carries no result set")
	}
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	l, ok := c.leases[leaseID]
	if !ok {
		return fmt.Errorf("sweepd: lease %s not found (expired or completed)", leaseID)
	}
	sw := c.sweeps[l.sweepID]

	// Durability first: persist the set, journal the release and the
	// acceptance by reference, and only then mutate state. On journal
	// failure the worker sees an error and retries; an orphaned result
	// file is harmless.
	var ref string
	if c.journal != nil {
		var err error
		if ref, err = c.journal.WriteResults(sw.id, sub.Results); err != nil {
			return err
		}
		if err := c.journal.Append(record{Kind: recRelease, Sweep: sw.id, Lease: leaseID, Reason: releaseResults}); err != nil {
			return err
		}
		if err := c.journal.Append(record{Kind: recAccept, Sweep: sw.id, Lease: leaseID, Ref: ref}); err != nil {
			return err
		}
	}
	delete(c.leases, leaseID)
	sw.active--
	if l.rival != "" {
		c.discardRivalLocked(sw, l.rival)
	}

	c.costs = c.costs.Merge(sub.Costs)
	sw.sets = append(sw.sets, sub.Results)
	if ref != "" {
		sw.refs = append(sw.refs, ref)
	}
	for _, item := range sub.Results.Results {
		if item.Index >= 0 && item.Index < sw.manifest.Total {
			sw.covered[item.Index] = true
		}
	}
	// A partial submission (worker gave up mid-shard) leaves a gap inside
	// this partition; replan exactly those indices as a recovery partition.
	var gap []int
	for _, it := range l.part.shard.Items {
		if !sw.covered[it.Index] {
			gap = append(gap, it.Index)
		}
	}
	if len(gap) > 0 {
		if err := c.requeueGapLocked(sw, l.part, gap); err != nil {
			return err
		}
	}
	c.logf("lease %s: sweep %s shard %d done (%d results, %d missing)",
		leaseID, sw.id, l.part.shard.Index, len(sub.Results.Results), len(gap))
	c.maybeFinishLocked(sw)
	return nil
}

// discardRivalLocked settles a speculation race: the named rival lease
// (the copy that lost) leaves the table without a requeue — the winning
// submission already covered the partition.
func (c *Coordinator) discardRivalLocked(sw *sweep, rivalID string) {
	r, alive := c.leases[rivalID]
	if !alive || r.sweepID != sw.id {
		return
	}
	c.appendBestEffortLocked(record{Kind: recRelease, Sweep: sw.id, Lease: rivalID, Reason: releaseDiscarded})
	delete(c.leases, rivalID)
	sw.active--
	sw.counters.SpecWins++
	c.logf("lease %s: discarded (rival submission for sweep %s shard %d landed first)",
		rivalID, sw.id, r.part.shard.Index)
}

// unlinkRivalLocked detaches a dying lease from its rival so the
// survivor carries the partition alone (and may later be shadowed
// again).
func (c *Coordinator) unlinkRivalLocked(l *lease) *lease {
	if l.rival == "" {
		return nil
	}
	r, alive := c.leases[l.rival]
	if alive {
		r.rival = ""
		return r
	}
	return nil
}

// Fail reports a lease the worker could not run; the partition requeues
// (bounded by MaxAttempts) unless a rival lease is still racing it.
func (c *Coordinator) Fail(leaseID string, req FailRequest) error {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	l, ok := c.leases[leaseID]
	if !ok {
		return fmt.Errorf("sweepd: lease %s not found (expired or completed)", leaseID)
	}
	sw := c.sweeps[l.sweepID]
	if err := c.appendLocked(record{Kind: recRelease, Sweep: sw.id, Lease: leaseID, Reason: releaseFail}); err != nil {
		return err
	}
	delete(c.leases, leaseID)
	sw.active--
	c.logf("lease %s: worker %q failed sweep %s shard %d: %s",
		leaseID, l.worker, sw.id, l.part.shard.Index, req.Error)
	if rival := c.unlinkRivalLocked(l); rival != nil {
		c.logf("lease %s: rival %s still racing the partition; no requeue", leaseID, rival.id)
	} else {
		c.requeueLocked(sw, l.part, requeueFailed, req.Error)
	}
	c.maybeFinishLocked(sw)
	return nil
}

// reapLocked reclaims expired leases: each reclaimed partition re-enters
// its sweep's queue with one more attempt on the clock — unless a rival
// lease is still racing it, in which case the rival is the retry.
func (c *Coordinator) reapLocked(now time.Time) {
	var ids []string
	for id, l := range c.leases {
		if now.After(l.deadline) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		l, ok := c.leases[id]
		if !ok {
			continue // already discarded as a rival this pass
		}
		sw := c.sweeps[l.sweepID]
		c.appendBestEffortLocked(record{Kind: recRelease, Sweep: sw.id, Lease: id, Reason: releaseExpired})
		delete(c.leases, id)
		sw.active--
		sw.counters.Expired++
		c.logf("lease %s: worker %q missed its deadline; requeueing sweep %s shard %d",
			id, l.worker, sw.id, l.part.shard.Index)
		if rival := c.unlinkRivalLocked(l); rival != nil {
			c.logf("lease %s: rival %s still racing the partition; no requeue", id, rival.id)
		} else {
			c.requeueLocked(sw, l.part, requeueExpired, "lease expired")
		}
		c.maybeFinishLocked(sw)
	}
}

// Requeue reason codes, journaled for cumulative counter replay.
const (
	requeueExpired   = "expired"
	requeueFailed    = "failed"
	requeueGap       = "gap"
	requeueMerge     = "merge"
	requeueRecovered = "recovered"
)

// requeueLocked puts a partition back in the queue, failing the sweep if
// the partition has exhausted its attempts. Scenarios already covered by
// other submissions are dropped from the requeued partition so recovery
// never re-runs completed work; a partition whose scenarios all landed
// elsewhere dissolves without costing an attempt.
func (c *Coordinator) requeueLocked(sw *sweep, part pending, code, detail string) {
	var remaining []int
	for _, it := range part.shard.Items {
		if !sw.covered[it.Index] {
			remaining = append(remaining, it.Index)
		}
	}
	if len(remaining) == 0 {
		return // everything landed elsewhere; nothing to redo
	}
	part.attempts++
	if part.attempts >= c.opts.MaxAttempts {
		c.failSweepLocked(sw, fmt.Sprintf("partition %d failed %d times (last: %s)",
			part.shard.Index, part.attempts, detail))
		return
	}
	if len(remaining) != len(part.shard.Items) {
		shards, err := shard.Replan(sw.manifest, remaining, 1)
		if err != nil {
			c.failSweepLocked(sw, err.Error())
			return
		}
		part.shard.Items = shards[0].Items
	}
	c.appendBestEffortLocked(record{Kind: recRequeue, Sweep: sw.id, Reason: code})
	sw.counters.Requeues++
	if code == requeueGap || code == requeueMerge {
		sw.counters.Replans++
	}
	sw.queue = append(sw.queue, part)
}

// failSweepLocked journals and applies a sweep's terminal failure.
func (c *Coordinator) failSweepLocked(sw *sweep, msg string) {
	sw.state = StateFailed
	sw.errMsg = msg
	c.appendBestEffortLocked(record{Kind: recState, Sweep: sw.id, State: StateFailed, Error: msg})
	c.logf("sweep %s failed: %s", sw.id, msg)
}

// requeueGapLocked turns a merge gap (missing global indices) into a
// recovery partition via shard.Replan — the exact-missing-indices
// recovery path.
func (c *Coordinator) requeueGapLocked(sw *sweep, from pending, missing []int) error {
	shards, err := shard.Replan(sw.manifest, missing, 1)
	if err != nil {
		c.failSweepLocked(sw, err.Error())
		return err
	}
	from.shard.Items = shards[0].Items
	c.requeueLocked(sw, from, requeueGap, "partial results")
	return nil
}

// maybeFinishLocked merges the sweep once nothing is queued or leased,
// then compacts the journal so it tracks the live sweep set instead of
// growing with history. A merge gap (defensive: incremental coverage
// should have caught it) re-plans the missing indices instead of failing.
func (c *Coordinator) maybeFinishLocked(sw *sweep) {
	if sw.state != StateRunning || len(sw.queue) > 0 || sw.active > 0 {
		return
	}
	results, err := shard.Merge(sw.manifest, sw.sets)
	if err == nil {
		sw.merged = results
		sw.state = StateDone
		c.appendBestEffortLocked(record{Kind: recState, Sweep: sw.id, State: StateDone})
		c.compactLocked()
		c.logf("sweep %s complete: %d scenarios merged", sw.id, sw.manifest.Total)
		return
	}
	var inc *shard.IncompleteError
	if errors.As(err, &inc) {
		shards, rerr := shard.Replan(sw.manifest, inc.Missing, 1)
		if rerr == nil {
			c.requeueLocked(sw, pending{shard: shards[0]}, requeueMerge, "merge gap")
			return
		}
		err = rerr
	}
	c.failSweepLocked(sw, err.Error())
	c.logf("sweep %s failed at merge: %v", sw.id, err)
}

// SweepStatus reports one sweep.
func (c *Coordinator) SweepStatus(id string) (SweepStatus, error) {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	sw, ok := c.sweeps[id]
	if !ok {
		return SweepStatus{}, fmt.Errorf("sweepd: sweep %s not found", id)
	}
	return c.sweepStatusLocked(sw), nil
}

func (c *Coordinator) sweepStatusLocked(sw *sweep) SweepStatus {
	return SweepStatus{
		ID:         sw.id,
		Experiment: sw.manifest.Experiment,
		State:      sw.state,
		Total:      sw.manifest.Total,
		Completed:  len(sw.covered),
		Queued:     len(sw.queue),
		Leased:     sw.active,
		Error:      sw.errMsg,
		Expired:    sw.counters.Expired,
		Requeues:   sw.counters.Requeues,
		Replans:    sw.counters.Replans,
		SpecIssued: sw.counters.SpecIssued,
		SpecWins:   sw.counters.SpecWins,
	}
}

// Status reports the whole service. The fleet counters are sums of the
// per-sweep counters, which the journal persists — so they are cumulative
// across coordinator restarts, not per-process.
func (c *Coordinator) Status() CoordinatorStatus {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	st := CoordinatorStatus{
		Version:  ProtocolVersion,
		Ready:    c.ready.Load(),
		Draining: c.draining,
	}
	for _, id := range c.order {
		sw := c.sweeps[id]
		st.Sweeps = append(st.Sweeps, c.sweepStatusLocked(sw))
		st.ExpiredLeases += sw.counters.Expired
		st.Requeues += sw.counters.Requeues
		st.Replans += sw.counters.Replans
		st.SpecIssued += sw.counters.SpecIssued
		st.SpecWins += sw.counters.SpecWins
	}
	for _, l := range c.leases {
		st.Leases = append(st.Leases, LeaseInfo{
			ID:          l.id,
			SweepID:     l.sweepID,
			Worker:      l.worker,
			Scenarios:   len(l.part.shard.Items),
			StartedAt:   l.started,
			Deadline:    l.deadline,
			Speculative: l.speculative,
		})
	}
	sort.Slice(st.Leases, func(i, j int) bool { return st.Leases[i].ID < st.Leases[j].ID })
	return st
}

// SweepResults reports a sweep's completed scenarios so far, in global
// index order; Complete is true once the sweep has merged.
func (c *Coordinator) SweepResults(id string) (ResultsResponse, error) {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	sw, ok := c.sweeps[id]
	if !ok {
		return ResultsResponse{}, fmt.Errorf("sweepd: sweep %s not found", id)
	}
	resp := ResultsResponse{
		Version:  ProtocolVersion,
		State:    sw.state,
		Error:    sw.errMsg,
		Complete: sw.state == StateDone,
	}
	byIndex := make(map[int]shard.ResultItem, len(sw.covered))
	for _, rs := range sw.sets {
		for _, item := range rs.Results {
			if _, dup := byIndex[item.Index]; !dup {
				byIndex[item.Index] = item
			}
		}
	}
	indices := make([]int, 0, len(byIndex))
	for i := range byIndex {
		indices = append(indices, i)
	}
	sort.Ints(indices)
	for _, i := range indices {
		resp.Results = append(resp.Results, byIndex[i])
	}
	return resp, nil
}

// Merged returns a completed sweep's merged results (the same slice shape
// core.Runner.RunAll produces) — the in-process path tests and benchmarks
// use to skip the client-side re-merge.
func (c *Coordinator) Merged(id string) ([]core.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, ok := c.sweeps[id]
	if !ok {
		return nil, fmt.Errorf("sweepd: sweep %s not found", id)
	}
	if sw.state != StateDone {
		return nil, fmt.Errorf("sweepd: sweep %s is %s, not done", id, sw.state)
	}
	return sw.merged, nil
}

// CostTable snapshots the coordinator's merged planning model.
func (c *Coordinator) CostTable() core.CostTable {
	c.mu.Lock()
	defer c.mu.Unlock()
	return copyCosts(c.costs)
}

// copyCosts clones a cost table (CostTable.Merge mutates its receiver, so
// callers that need a stable snapshot copy first).
func copyCosts(t core.CostTable) core.CostTable {
	out := make(core.CostTable, len(t))
	for id, s := range t {
		out[id] = s
	}
	return out
}

// Drain stops admitting sweeps and granting leases and tells polling
// workers to exit; in-flight leases may still heartbeat and submit.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.draining = true
}

// Shutdown drains the coordinator, waits up to timeout (wall clock) for
// in-flight leases to submit or fail, journals a clean-shutdown record,
// and closes the journal. Leases still out when the wait expires are
// abandoned to the journal: the next Recover expires them and re-plans
// their uncovered scenarios.
func (c *Coordinator) Shutdown(timeout time.Duration) {
	c.Drain()
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		n := len(c.leases)
		c.mu.Unlock()
		if n == 0 || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.appendBestEffortLocked(record{Kind: recShutdown})
	if c.journal != nil {
		if err := c.journal.Close(); err != nil {
			c.logf("journal: close: %v", err)
		}
		c.journal = nil
	}
}
