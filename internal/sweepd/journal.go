package sweepd

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/shard"
)

// The write-ahead journal makes the coordinator's sweep state durable:
// every state transition appends one framed, checksummed record to
// <state-dir>/journal.wal before the in-memory state changes, and accepted
// result sets are persisted as separate files under <state-dir>/results/
// with the journal holding only a reference — so the journal stays small
// and replay never re-runs a finished scenario. On restart the coordinator
// replays the journal (recovery.go), truncating a torn tail record instead
// of refusing to start, and compacts the journal to per-sweep snapshot
// records whenever a sweep completes.

// journalVersion is the schema version of journal records; replay skips
// records from a different version rather than mis-reading them.
const journalVersion = 1

// Journal record kinds, mirroring the coordinator's state transitions.
const (
	// recSubmit: a sweep was admitted; carries the re-planned manifest.
	recSubmit = "submit"
	// recSnapshot: a compaction summary of one sweep — manifest, state,
	// counters, and accepted-result references.
	recSnapshot = "snapshot"
	// recLease: a partition was granted to a worker.
	recLease = "lease"
	// recRelease: a lease left the table (results, fail, expired, discarded).
	recRelease = "release"
	// recAccept: a result set was accepted; Ref names its file under
	// results/.
	recAccept = "accept"
	// recRequeue: a partition re-entered the queue (counter semantics).
	recRequeue = "requeue"
	// recState: a sweep reached a terminal state (done/failed).
	recState = "state"
	// recShutdown: the coordinator drained and exited cleanly.
	recShutdown = "shutdown"
)

// Lease-release reasons (recRelease.Reason).
const (
	releaseResults   = "results"
	releaseFail      = "fail"
	releaseExpired   = "expired"
	releaseDiscarded = "discarded"
)

// sweepCounters are the per-sweep recovery counters persisted across
// restarts (satisfying cumulative Status reporting).
type sweepCounters struct {
	// Expired counts leases reclaimed after a missed deadline — including
	// leases outstanding at a crash, which replay expires wholesale.
	Expired int `json:"expired,omitempty"`
	// Requeues counts partitions that re-entered the queue for any reason.
	Requeues int `json:"requeues,omitempty"`
	// Replans counts recovery partitions built from merge gaps.
	Replans int `json:"replans,omitempty"`
	// SpecIssued counts shadow leases issued for straggling primaries;
	// SpecWins counts rival leases discarded because the other copy of the
	// partition landed first.
	SpecIssued int `json:"spec_issued,omitempty"`
	SpecWins   int `json:"spec_wins,omitempty"`
}

// record is one journal entry. Kind decides which fields are meaningful;
// unused fields stay at their zero values and are omitted from the wire.
type record struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`
	// Sweep identifies the sweep the record belongs to (all kinds but
	// shutdown).
	Sweep string `json:"sweep,omitempty"`
	// Manifest is the coordinator's re-planned partition (submit, snapshot).
	Manifest *shard.Manifest `json:"manifest,omitempty"`
	// State and Error carry terminal sweep state (state, snapshot).
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	// Refs lists accepted result files (snapshot); Ref names one (accept).
	Refs []string `json:"refs,omitempty"`
	Ref  string   `json:"ref,omitempty"`
	// Counters snapshots the sweep's recovery counters (snapshot).
	Counters *sweepCounters `json:"counters,omitempty"`
	// Lease/Worker/Shard/Speculative describe a lease (lease, release,
	// accept).
	Lease       string `json:"lease,omitempty"`
	Worker      string `json:"worker,omitempty"`
	ShardIndex  int    `json:"shard,omitempty"`
	Speculative bool   `json:"speculative,omitempty"`
	// Reason qualifies a release or requeue.
	Reason string `json:"reason,omitempty"`
}

// journalFile is the WAL's name inside the state directory; resultsDir
// holds the referenced result sets.
const (
	journalFile = "journal.wal"
	resultsDir  = "results"
)

// Journal is the coordinator's durable log: fsync'd atomic appends of
// framed records plus a directory of referenced result-set files. One
// coordinator owns one journal; methods are not safe for concurrent use
// (the coordinator serializes them under its own lock).
type Journal struct {
	dir  string
	path string
	f    *os.File
	seq  atomic.Uint64 // result-file uniquifier
}

// OpenJournal opens (creating if needed) the journal rooted at dir.
func OpenJournal(dir string) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweepd: journal directory must not be empty")
	}
	if err := os.MkdirAll(filepath.Join(dir, resultsDir), 0o755); err != nil {
		return nil, fmt.Errorf("sweepd: creating state directory: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweepd: opening journal: %w", err)
	}
	j := &Journal{dir: dir, path: path, f: f}
	// Seed the result-file uniquifier past any files already present so a
	// recovered coordinator never overwrites a referenced set.
	if des, err := os.ReadDir(filepath.Join(dir, resultsDir)); err == nil {
		j.seq.Store(uint64(len(des)))
	}
	return j, nil
}

// Dir returns the journal's state directory.
func (j *Journal) Dir() string { return j.dir }

// Close closes the journal file.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// frame renders one record line: 8 hex CRC32(payload) + space + payload +
// newline. encoding/json escapes raw newlines, so the newline terminates
// exactly one record and a torn write is detectable as a CRC mismatch or a
// missing terminator.
func frame(rec record) ([]byte, error) {
	rec.V = journalVersion
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("sweepd: encoding journal record: %w", err)
	}
	line := make([]byte, 0, len(payload)+10)
	var crc [4]byte
	sum := crc32.ChecksumIEEE(payload)
	crc[0], crc[1], crc[2], crc[3] = byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum)
	line = append(line, []byte(hex.EncodeToString(crc[:]))...)
	line = append(line, ' ')
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// parseFrame decodes one framed line (without its newline). ok is false
// for any malformed or checksum-failing line.
func parseFrame(line []byte) (record, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return record{}, false
	}
	crcBytes, err := hex.DecodeString(string(line[:8]))
	if err != nil {
		return record{}, false
	}
	payload := line[9:]
	want := uint32(crcBytes[0])<<24 | uint32(crcBytes[1])<<16 | uint32(crcBytes[2])<<8 | uint32(crcBytes[3])
	if crc32.ChecksumIEEE(payload) != want {
		return record{}, false
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return record{}, false
	}
	return rec, true
}

// Append durably appends one record: the line is written in a single
// write syscall to the O_APPEND file and fsync'd before returning, so an
// acknowledged transition survives a crash immediately after.
func (j *Journal) Append(rec record) error {
	line, err := frame(rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("sweepd: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sweepd: syncing journal: %w", err)
	}
	return nil
}

// Load reads every valid record from the journal. A torn or corrupt tail —
// a record interrupted mid-write by a crash — is truncated away so the
// journal is immediately appendable again; everything before it replays.
// Records written under a foreign journalVersion are skipped, not
// misread.
func (j *Journal) Load() ([]record, error) {
	data, err := os.ReadFile(j.path)
	if err != nil {
		return nil, fmt.Errorf("sweepd: reading journal: %w", err)
	}
	var recs []record
	valid := 0 // byte offset of the end of the last valid record
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated tail: torn final write
		}
		rec, ok := parseFrame(data[off : off+nl])
		if !ok {
			break // checksum/format failure: torn or corrupt from here on
		}
		if rec.V == journalVersion {
			recs = append(recs, rec)
		}
		off += nl + 1
		valid = off
	}
	if valid < len(data) {
		if err := j.f.Truncate(int64(valid)); err != nil {
			return nil, fmt.Errorf("sweepd: truncating torn journal tail: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return nil, fmt.Errorf("sweepd: syncing truncated journal: %w", err)
		}
	}
	return recs, nil
}

// Compact atomically replaces the journal's contents with the given
// records (per-sweep snapshots plus still-outstanding leases): write to a
// temp file, fsync, rename over the WAL, reopen for appending. Called
// whenever a sweep completes, so the journal's size tracks the live sweep
// set instead of growing with history.
func (j *Journal) Compact(recs []record) error {
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("sweepd: creating compaction file: %w", err)
	}
	for _, rec := range recs {
		line, err := frame(rec)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if _, err := f.Write(line); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("sweepd: writing compaction file: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("sweepd: syncing compaction file: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sweepd: closing compaction file: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sweepd: committing compaction: %w", err)
	}
	// The old fd still points at the unlinked pre-compaction inode; reopen
	// so appends land in the compacted file.
	old := j.f
	f, err = os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("sweepd: reopening compacted journal: %w", err)
	}
	j.f = f
	_ = old.Close()
	return syncDir(j.dir)
}

// WriteResults durably persists an accepted result set under results/ and
// returns the reference to journal (the file name, state-dir relative).
// The write is atomic (temp + fsync + rename), so a reference that made it
// into the journal always points at a complete file.
func (j *Journal) WriteResults(sweepID string, rs *shard.ResultSet) (string, error) {
	name := fmt.Sprintf("%s-%06d.json", sweepID, j.seq.Add(1))
	path := filepath.Join(j.dir, resultsDir, name)
	data, err := json.Marshal(rs)
	if err != nil {
		return "", fmt.Errorf("sweepd: encoding result set: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("sweepd: creating result file: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("sweepd: writing result file: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("sweepd: syncing result file: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("sweepd: closing result file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("sweepd: committing result file: %w", err)
	}
	return filepath.Join(resultsDir, name), nil
}

// ReadResults loads a referenced result set. The reference is confined to
// the results directory (journal references are names, not paths).
func (j *Journal) ReadResults(ref string) (*shard.ResultSet, error) {
	path := filepath.Join(j.dir, resultsDir, filepath.Base(ref))
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweepd: reading result set %s: %w", ref, err)
	}
	var rs shard.ResultSet
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("sweepd: corrupt result set %s: %w", ref, err)
	}
	if rs.Version != shard.ResultSetVersion {
		return nil, fmt.Errorf("sweepd: result set %s has version %d, want %d", ref, rs.Version, shard.ResultSetVersion)
	}
	return &rs, nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil // best effort: some platforms refuse directory opens
	}
	defer d.Close()
	return d.Sync()
}

// idNumber parses the numeric suffix of a coordinator id ("s12" -> 12, 0
// when unparseable), used by replay to resume the id counters past every
// journaled id.
func idNumber(id string) int {
	n, err := strconv.Atoi(strings.TrimLeft(id, "sl"))
	if err != nil {
		return 0
	}
	return n
}
