package sweepd

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// TestJournalTornTail: a record interrupted mid-write (torn tail, or a
// tail whose bytes were corrupted) is truncated away on Load and the
// journal keeps appending from the last valid record.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, sweep := range []string{"s1", "s2", "s3"} {
		if err := j.Append(record{Kind: recRequeue, Sweep: sweep, Reason: requeueExpired}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	path := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: drop its trailing half, newline included.
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := j2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Sweep != "s1" || recs[1].Sweep != "s2" {
		t.Fatalf("torn-tail load = %+v, want s1,s2", recs)
	}
	// The journal is immediately appendable again.
	if err := j2.Append(record{Kind: recRequeue, Sweep: "s4", Reason: requeueExpired}); err != nil {
		t.Fatal(err)
	}
	recs, err = j2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Sweep != "s4" {
		t.Fatalf("post-truncation append lost: %+v", recs)
	}
	j2.Close()

	// A corrupted (checksum-failing) tail is dropped the same way.
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	recs, err = j3.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("corrupt-tail load kept %d records, want 2", len(recs))
	}
}

// openTestCoordinator opens a durable coordinator over dir and replays
// its journal.
func openTestCoordinator(t *testing.T, dir string, clock *fakeClock) *Coordinator {
	t.Helper()
	c, err := Open(Options{StateDir: dir, LeaseTTL: 10 * time.Second, Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	if c.Ready() {
		t.Fatal("durable coordinator ready before Recover")
	}
	if resp, err := c.Lease(LeaseRequest{Version: ProtocolVersion, Worker: "early"}); err != nil || resp.Status != LeaseWait {
		t.Fatalf("lease before recovery = (%+v, %v), want wait", resp, err)
	}
	if err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if !c.Ready() {
		t.Fatal("coordinator not ready after Recover")
	}
	return c
}

// leaseWork polls until the coordinator grants a lease.
func leaseWork(t *testing.T, c *Coordinator, worker string) LeaseResponse {
	t.Helper()
	resp, err := c.Lease(LeaseRequest{Version: ProtocolVersion, Worker: worker})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != LeaseWork {
		t.Fatalf("lease for %q = %+v, want work", worker, resp)
	}
	return resp
}

// TestRecoverResumesSweep is the crash-restart round trip: a coordinator
// dies with one partition's results accepted and another leased out; a
// fresh coordinator over the same state directory resumes with exactly
// the missing scenarios queued, cumulative counters, and — after a second
// crash once the sweep finished — the merged results intact.
func TestRecoverResumesSweep(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	spec := testSpec()
	scenarios := testScenarios(spec, 4)

	c1 := openTestCoordinator(t, dir, clock)
	resp, err := c1.Submit(SubmitRequest{Version: ProtocolVersion, Manifest: testManifest(t, spec, scenarios), Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	id := resp.ID
	l1 := leaseWork(t, c1, "w1")
	if err := c1.Results(l1.LeaseID, ResultSubmission{Version: ProtocolVersion, Results: fakeResults(l1.Shard.Index, l1.Shard.Items)}); err != nil {
		t.Fatal(err)
	}
	l2 := leaseWork(t, c1, "w1")
	done := len(l1.Shard.Items)
	// Crash: c1 is abandoned mid-lease, journal left as-is.

	c2 := openTestCoordinator(t, dir, clock)
	st, err := c2.SweepStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateRunning || st.Completed != done || st.Queued == 0 || st.Leased != 0 {
		t.Fatalf("recovered sweep = %+v, want running with %d done and the rest queued", st, done)
	}
	if st.Expired != 1 {
		t.Fatalf("outstanding lease %s not expired by recovery: %+v", l2.LeaseID, st)
	}
	if fleet := c2.Status(); fleet.ExpiredLeases != 1 || !fleet.Ready {
		t.Fatalf("fleet counters after recovery: %+v", fleet)
	}
	// The abandoned lease is unknown to the new coordinator.
	if err := c2.Heartbeat(l2.LeaseID); err == nil {
		t.Fatalf("pre-crash lease %s survived the restart", l2.LeaseID)
	}

	// Finish the sweep on the recovered coordinator: only the missing
	// scenarios are handed out again.
	seen := make(map[int]bool)
	for {
		lr, err := c2.Lease(LeaseRequest{Version: ProtocolVersion, Worker: "w2"})
		if err != nil {
			t.Fatal(err)
		}
		if lr.Status != LeaseWork {
			break
		}
		for _, it := range lr.Shard.Items {
			if it.Index < done {
				t.Fatalf("recovery re-leased completed scenario %d", it.Index)
			}
			seen[it.Index] = true
		}
		if err := c2.Results(lr.LeaseID, ResultSubmission{Version: ProtocolVersion, Results: fakeResults(lr.Shard.Index, lr.Shard.Items)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != len(scenarios)-done {
		t.Fatalf("recovery leased %d scenarios, want %d", len(seen), len(scenarios)-done)
	}
	st, err = c2.SweepStatus(id)
	if err != nil || st.State != StateDone {
		t.Fatalf("resumed sweep = (%+v, %v), want done", st, err)
	}
	if _, err := c2.Merged(id); err != nil {
		t.Fatal(err)
	}

	// Crash again after completion: the compacted journal replays the
	// finished sweep — merged results served, counters still cumulative,
	// nothing re-queued.
	c3 := openTestCoordinator(t, dir, clock)
	st, err = c3.SweepStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Completed != len(scenarios) || st.Queued != 0 {
		t.Fatalf("finished sweep after second restart = %+v", st)
	}
	if st.Expired != 1 {
		t.Fatalf("counters not cumulative across restarts: %+v", st)
	}
	merged, err := c3.Merged(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(scenarios) {
		t.Fatalf("replayed merge has %d results, want %d", len(merged), len(scenarios))
	}
	if lr, err := c3.Lease(LeaseRequest{Version: ProtocolVersion, Worker: "w3"}); err != nil || lr.Status != LeaseWait {
		t.Fatalf("finished sweep still leases work: (%+v, %v)", lr, err)
	}
}

// TestRecoverDuplicateAccept: replaying a journal whose accept record was
// duplicated (a crash can land between the append and the apply, and the
// retried submission appends again) folds the result set once.
func TestRecoverDuplicateAccept(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	spec := testSpec()
	scenarios := testScenarios(spec, 4)

	c1 := openTestCoordinator(t, dir, clock)
	resp, err := c1.Submit(SubmitRequest{Version: ProtocolVersion, Manifest: testManifest(t, spec, scenarios), Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	l1 := leaseWork(t, c1, "w1")
	if err := c1.Results(l1.LeaseID, ResultSubmission{Version: ProtocolVersion, Results: fakeResults(l1.Shard.Index, l1.Shard.Items)}); err != nil {
		t.Fatal(err)
	}

	// Duplicate the accept line verbatim (valid frame, same ref).
	path := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var acceptLine string
	for _, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, `"kind":"`+recAccept+`"`) {
			acceptLine = line
		}
	}
	if acceptLine == "" {
		t.Fatal("no accept record journaled")
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(acceptLine + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2 := openTestCoordinator(t, dir, clock)
	st, err := c2.SweepStatus(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != len(l1.Shard.Items) || st.State != StateRunning {
		t.Fatalf("duplicate accept replay = %+v, want %d completed, running", st, len(l1.Shard.Items))
	}
	// The sweep still finishes cleanly — the deduplicated set cannot
	// conflict with itself at merge time.
	for {
		lr, err := c2.Lease(LeaseRequest{Version: ProtocolVersion, Worker: "w2"})
		if err != nil {
			t.Fatal(err)
		}
		if lr.Status != LeaseWork {
			break
		}
		if err := c2.Results(lr.LeaseID, ResultSubmission{Version: ProtocolVersion, Results: fakeResults(lr.Shard.Index, lr.Shard.Items)}); err != nil {
			t.Fatal(err)
		}
	}
	if st, err := c2.SweepStatus(resp.ID); err != nil || st.State != StateDone {
		t.Fatalf("sweep after duplicate-accept recovery = (%+v, %v), want done", st, err)
	}
}

// TestSpeculativeDoubleSubmission: a predicted straggler's partition is
// re-issued to a second worker, the first submission to land wins, and
// the loser's submission bounces as lease-gone — never a duplicate or a
// conflict in the merged sweep.
func TestSpeculativeDoubleSubmission(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(Options{LeaseTTL: 10 * time.Second, Clock: clock.Now})
	spec := testSpec()
	scenarios := testScenarios(spec, 4)
	resp, err := c.Submit(SubmitRequest{Version: ProtocolVersion, Manifest: testManifest(t, spec, scenarios), Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	id := resp.ID

	l1 := leaseWork(t, c, "w1")
	l2 := leaseWork(t, c, "w1")

	// Train the cost model to predict far more work than any deadline
	// leaves: every subsequent idle poll sees l2 as a straggler.
	ids, err := core.EstimatorIDs(spec.Methods...)
	if err != nil {
		t.Fatal(err)
	}
	costs := core.CostTable{ids[0]: {PerWorkSeconds: 1e3, AbsSeconds: 1e9}}
	if err := c.Results(l1.LeaseID, ResultSubmission{
		Version: ProtocolVersion,
		Results: fakeResults(l1.Shard.Index, l1.Shard.Items),
		Costs:   costs,
	}); err != nil {
		t.Fatal(err)
	}

	// The straggler's own worker never shadows itself.
	if lr, err := c.Lease(LeaseRequest{Version: ProtocolVersion, Worker: "w1"}); err != nil || lr.Status != LeaseWait {
		t.Fatalf("self-speculation: (%+v, %v), want wait", lr, err)
	}
	shadow, err := c.Lease(LeaseRequest{Version: ProtocolVersion, Worker: "w2"})
	if err != nil || shadow.Status != LeaseWork {
		t.Fatalf("shadow lease = (%+v, %v), want work", shadow, err)
	}
	if shadow.Shard.Index != l2.Shard.Index || len(shadow.Shard.Items) != len(l2.Shard.Items) {
		t.Fatalf("shadow carries shard %d, straggler holds %d", shadow.Shard.Index, l2.Shard.Index)
	}
	// One shadow per lease: a third worker waits.
	if lr, err := c.Lease(LeaseRequest{Version: ProtocolVersion, Worker: "w3"}); err != nil || lr.Status != LeaseWait {
		t.Fatalf("second shadow granted: (%+v, %v)", lr, err)
	}
	st := c.Status()
	if st.SpecIssued != 1 || st.SpecWins != 0 {
		t.Fatalf("speculation counters after issue: %+v", st)
	}
	spec0 := false
	for _, li := range st.Leases {
		if li.ID == shadow.LeaseID && li.Speculative {
			spec0 = true
		}
	}
	if !spec0 {
		t.Fatalf("shadow lease not marked speculative: %+v", st.Leases)
	}

	// The shadow lands first; the straggler's lease dies with it.
	if err := c.Results(shadow.LeaseID, ResultSubmission{Version: ProtocolVersion, Results: fakeResults(shadow.Shard.Index, shadow.Shard.Items)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Results(l2.LeaseID, ResultSubmission{Version: ProtocolVersion, Results: fakeResults(l2.Shard.Index, l2.Shard.Items)}); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("loser's submission = %v, want lease-not-found", err)
	}

	st = c.Status()
	if st.SpecWins != 1 {
		t.Fatalf("speculation win not counted: %+v", st)
	}
	sw, err := c.SweepStatus(id)
	if err != nil || sw.State != StateDone || sw.Completed != len(scenarios) {
		t.Fatalf("sweep after speculation = (%+v, %v), want done", sw, err)
	}
	if merged, err := c.Merged(id); err != nil || len(merged) != len(scenarios) {
		t.Fatalf("merged after speculation = (%d results, %v)", len(merged), err)
	}
}

// TestSpeculationSurvivorCarriesOn: when the original straggler dies (its
// lease expires) while a shadow is racing it, the partition is NOT
// requeued — the surviving shadow is the retry.
func TestSpeculationSurvivorCarriesOn(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(Options{LeaseTTL: 10 * time.Second, Clock: clock.Now})
	spec := testSpec()
	scenarios := testScenarios(spec, 4)
	resp, err := c.Submit(SubmitRequest{Version: ProtocolVersion, Manifest: testManifest(t, spec, scenarios), Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	l1 := leaseWork(t, c, "w1")
	leaseWork(t, c, "w1") // the straggler-to-be
	ids, err := core.EstimatorIDs(spec.Methods...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Results(l1.LeaseID, ResultSubmission{
		Version: ProtocolVersion,
		Results: fakeResults(l1.Shard.Index, l1.Shard.Items),
		Costs:   core.CostTable{ids[0]: {PerWorkSeconds: 1e3, AbsSeconds: 1e9}},
	}); err != nil {
		t.Fatal(err)
	}
	shadow, err := c.Lease(LeaseRequest{Version: ProtocolVersion, Worker: "w2"})
	if err != nil || shadow.Status != LeaseWork {
		t.Fatalf("shadow lease = (%+v, %v)", shadow, err)
	}
	// The straggler goes silent past its TTL; the shadow keeps
	// heartbeating.
	clock.Advance(8 * time.Second)
	if err := c.Heartbeat(shadow.LeaseID); err != nil {
		t.Fatal(err)
	}
	clock.Advance(4 * time.Second)
	st := c.Status()
	if st.ExpiredLeases != 1 {
		t.Fatalf("straggler not expired: %+v", st)
	}
	if got := st.Sweeps[0].Queued; got != 0 {
		t.Fatalf("expired straggler requeued despite live shadow: %+v", st.Sweeps[0])
	}
	if err := c.Results(shadow.LeaseID, ResultSubmission{Version: ProtocolVersion, Results: fakeResults(shadow.Shard.Index, shadow.Shard.Items)}); err != nil {
		t.Fatal(err)
	}
	if sw, err := c.SweepStatus(resp.ID); err != nil || sw.State != StateDone {
		t.Fatalf("sweep = (%+v, %v), want done", sw, err)
	}
}

// TestDrainUnderLoad: drain stops leasing immediately (queued work
// included), in-flight leases still submit, Shutdown journals the clean
// exit, and the next coordinator resumes the still-queued partition with
// no spurious expiries.
func TestDrainUnderLoad(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	spec := testSpec()
	scenarios := testScenarios(spec, 4)

	c1 := openTestCoordinator(t, dir, clock)
	resp, err := c1.Submit(SubmitRequest{Version: ProtocolVersion, Manifest: testManifest(t, spec, scenarios), Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	l1 := leaseWork(t, c1, "w1")
	c1.Drain()
	// Queued work stays queued: drain refuses new leases outright.
	if lr, err := c1.Lease(LeaseRequest{Version: ProtocolVersion, Worker: "w2"}); err != nil || lr.Status != LeaseBye {
		t.Fatalf("lease under drain = (%+v, %v), want bye", lr, err)
	}
	// The in-flight lease still heartbeats and submits.
	if err := c1.Heartbeat(l1.LeaseID); err != nil {
		t.Fatal(err)
	}
	if err := c1.Results(l1.LeaseID, ResultSubmission{Version: ProtocolVersion, Results: fakeResults(l1.Shard.Index, l1.Shard.Items)}); err != nil {
		t.Fatal(err)
	}
	st := c1.Status()
	if !st.Draining || len(st.Leases) != 0 {
		t.Fatalf("status under drain: %+v", st)
	}
	c1.Shutdown(time.Second)

	c2 := openTestCoordinator(t, dir, clock)
	sw, err := c2.SweepStatus(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sw.State != StateRunning || sw.Completed != len(l1.Shard.Items) || sw.Queued == 0 {
		t.Fatalf("sweep after clean shutdown = %+v", sw)
	}
	if sw.Expired != 0 {
		t.Fatalf("clean drain still expired a lease: %+v", sw)
	}
	for {
		lr, err := c2.Lease(LeaseRequest{Version: ProtocolVersion, Worker: "w2"})
		if err != nil {
			t.Fatal(err)
		}
		if lr.Status != LeaseWork {
			break
		}
		if err := c2.Results(lr.LeaseID, ResultSubmission{Version: ProtocolVersion, Results: fakeResults(lr.Shard.Index, lr.Shard.Items)}); err != nil {
			t.Fatal(err)
		}
	}
	if sw, err := c2.SweepStatus(resp.ID); err != nil || sw.State != StateDone {
		t.Fatalf("resumed sweep = (%+v, %v), want done", sw, err)
	}
}

// TestReadinessOverHTTP: /v1/healthz answers as soon as the handler is
// mounted, /v1/readyz (and Client.Ready) flips only when journal replay
// finishes, and a vanished coordinator reads as not ready rather than
// an error.
func TestReadinessOverHTTP(t *testing.T) {
	clock := newFakeClock()
	c, err := Open(Options{StateDir: t.TempDir(), LeaseTTL: 10 * time.Second, Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()
	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Client().Get(srv.URL + HealthPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during replay = %d, want 200", resp.StatusCode)
	}
	if client.Ready() {
		t.Fatal("client reports ready before Recover")
	}
	if err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if !client.Ready() {
		t.Fatal("client not ready after Recover")
	}

	srv.Close()
	if client.Ready() {
		t.Fatal("client ready against a closed coordinator")
	}
}

// TestJournalCompactAndResults: Compact atomically replaces the journal's
// contents and appends keep working afterwards; WriteResults/ReadResults
// round-trip a result set by reference, confine references to the results
// directory, and reject wrong-version payloads.
func TestJournalCompactAndResults(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 5; i++ {
		if err := j.Append(record{Kind: recRequeue, Sweep: "s1", Reason: requeueExpired}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact([]record{{V: journalVersion, Kind: recSnapshot, Sweep: "s1", State: StateDone}}); err != nil {
		t.Fatal(err)
	}
	// Post-compaction appends must land in the compacted file, not the
	// unlinked pre-compaction inode.
	if err := j.Append(record{Kind: recSubmit, Sweep: "s2"}); err != nil {
		t.Fatal(err)
	}
	recs, err := j.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Kind != recSnapshot || recs[1].Sweep != "s2" {
		t.Fatalf("post-compaction journal = %+v, want snapshot(s1)+submit(s2)", recs)
	}

	rs := &shard.ResultSet{Version: shard.ResultSetVersion, Results: []shard.ResultItem{{Index: 3}}}
	ref, err := j.WriteResults("s1", rs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(ref, resultsDir+"/") {
		t.Fatalf("result reference %q not under %s/", ref, resultsDir)
	}
	got, err := j.ReadResults(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 || got.Results[0].Index != 3 {
		t.Fatalf("result round-trip = %+v", got)
	}
	// A reference is a name, not a path: traversal stays confined to
	// results/ and simply fails to resolve.
	if _, err := j.ReadResults("../journal.wal"); err == nil {
		t.Fatal("path-traversal reference resolved outside results/")
	}
	bad := filepath.Join(dir, resultsDir, "evil.json")
	if err := os.WriteFile(bad, []byte(`{"version":999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := j.ReadResults("evil.json"); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong-version result set accepted: %v", err)
	}
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := j.ReadResults("evil.json"); err == nil {
		t.Fatal("corrupt result set accepted")
	}
}

// TestOpenBadStateDir: a state directory that cannot be created (a file
// squats on the path) fails Open loudly instead of running non-durably.
func TestOpenBadStateDir(t *testing.T) {
	occupied := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(occupied, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{StateDir: occupied}); err == nil {
		t.Fatal("Open succeeded with a file squatting on the state dir")
	}
}
