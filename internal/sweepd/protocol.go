// Package sweepd serves parameter sweeps as a long-running distributed
// service: an HTTP coordinator accepts sweep requests (a shard.Manifest —
// experiment, grid, and Runner parameterization), partitions them with
// cost-weighted planning fed by the workers' own EWMA cost models, leases
// partitions to workers over a small JSON/HTTP protocol with per-lease
// deadlines and heartbeats, and streams shard results back as they
// complete.
//
// Crash recovery is structural, not hopeful: a worker that stops
// heartbeating loses its lease and the partition re-enters the queue; a
// result set that covers only part of its partition has the remainder
// re-planned from the merge gap (shard.Replan) — and because every
// scenario's seed is derived from its configuration content, the recovered
// sweep is byte-identical to an uninterrupted single-process run. The
// coordinator also hosts a remote result cache (core.CacheHandler), so a
// fleet without a shared filesystem still simulates each grid point once.
package sweepd

import (
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// ProtocolVersion is the wire version of the coordinator/worker protocol;
// both sides reject foreign versions rather than mis-decode them.
const ProtocolVersion = 1

// CachePath is the coordinator's remote result-cache mount point; workers
// join it to the coordinator base URL.
const CachePath = "/v1/cache"

// HealthPath answers 200 whenever the process serves HTTP; ReadyPath
// answers 200 only once journal replay has finished and the coordinator
// is leasing work (503 while recovering).
const (
	HealthPath = "/v1/healthz"
	ReadyPath  = "/v1/readyz"
)

// SubmitRequest asks the coordinator to run a sweep. The manifest's
// partition (Shards) is advisory only: the coordinator flattens it back to
// the scenario batch and re-plans against its own cost model and partition
// count — placement never changes results, so re-planning is always safe.
type SubmitRequest struct {
	Version int `json:"version"`
	// Manifest carries the experiment name, Runner spec, grid, and any
	// renderer context in Extra.
	Manifest *shard.Manifest `json:"manifest"`
	// Partitions overrides the coordinator's default lease-partition count
	// for this sweep (0 = default). More partitions mean finer-grained
	// recovery at more protocol round trips.
	Partitions int `json:"partitions,omitempty"`
}

// SubmitResponse returns the sweep's coordinator-assigned id.
type SubmitResponse struct {
	ID string `json:"id"`
}

// Sweep states reported by status endpoints.
const (
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// LeaseInfo describes one active lease for observability (and for the
// fault-injection tests, which pick their victim by it).
type LeaseInfo struct {
	ID      string `json:"id"`
	SweepID string `json:"sweep_id"`
	Worker  string `json:"worker"`
	// Scenarios is the partition's scenario count.
	Scenarios int `json:"scenarios"`
	// Speculative marks a shadow lease racing a predicted straggler.
	Speculative bool `json:"speculative,omitempty"`
	// StartedAt is when the lease was granted; Deadline is when it expires
	// unless a heartbeat extends it.
	StartedAt time.Time `json:"started_at"`
	Deadline  time.Time `json:"deadline"`
}

// SweepStatus is the public state of one sweep.
type SweepStatus struct {
	ID         string `json:"id"`
	Experiment string `json:"experiment,omitempty"`
	State      string `json:"state"`
	// Total and Completed count scenarios (not partitions): Completed is
	// how many grid points have results in.
	Total     int `json:"total"`
	Completed int `json:"completed"`
	// Queued and Leased count partitions awaiting and holding workers.
	Queued int `json:"queued"`
	Leased int `json:"leased"`
	// Error is set when State is StateFailed.
	Error string `json:"error,omitempty"`
	// Recovery counters, cumulative across coordinator restarts (the
	// journal persists them): leases expired, partitions requeued,
	// recovery partitions re-planned from merge gaps, and speculative
	// shadow leases issued/won for this sweep.
	Expired    int `json:"expired,omitempty"`
	Requeues   int `json:"requeues,omitempty"`
	Replans    int `json:"replans,omitempty"`
	SpecIssued int `json:"spec_issued,omitempty"`
	SpecWins   int `json:"spec_wins,omitempty"`
}

// CoordinatorStatus is the service-wide view: every sweep plus the fleet
// counters the fault-injection gate asserts on.
type CoordinatorStatus struct {
	Version int           `json:"version"`
	Sweeps  []SweepStatus `json:"sweeps"`
	Leases  []LeaseInfo   `json:"leases"`
	// ExpiredLeases counts leases reclaimed because their worker stopped
	// heartbeating; Requeues counts partitions that re-entered the queue
	// for any reason (expiry, explicit failure, partial results).
	ExpiredLeases int `json:"expired_leases"`
	Requeues      int `json:"requeues"`
	// Replans counts recovery partitions created from merge gaps (partial
	// result sets), as opposed to whole partitions requeued on expiry.
	Replans int `json:"replans"`
	// SpecIssued and SpecWins count speculative shadow leases issued
	// against predicted stragglers and races settled by discarding the
	// rival lease.
	SpecIssued int `json:"spec_issued,omitempty"`
	SpecWins   int `json:"spec_wins,omitempty"`
	// Ready is false while the coordinator replays its journal; Draining
	// is true once a graceful shutdown has begun.
	Ready    bool `json:"ready"`
	Draining bool `json:"draining,omitempty"`
}

// LeaseRequest is a worker's poll for work.
type LeaseRequest struct {
	Version int `json:"version"`
	// Worker identifies the polling worker in status output and logs.
	Worker string `json:"worker"`
}

// Lease poll outcomes.
const (
	// LeaseWork: the response carries a lease.
	LeaseWork = "work"
	// LeaseWait: no work right now; poll again (with backoff).
	LeaseWait = "wait"
	// LeaseBye: the coordinator is draining; the worker should exit.
	LeaseBye = "bye"
)

// LeaseResponse answers a poll. When Status is LeaseWork, the worker runs
// Shard under Runner's parameterization, heartbeats at least once per
// TTL/3, and submits a ResultSubmission before the (extended) deadline.
type LeaseResponse struct {
	Version int               `json:"version"`
	Status  string            `json:"status"`
	LeaseID string            `json:"lease_id,omitempty"`
	SweepID string            `json:"sweep_id,omitempty"`
	Runner  *shard.RunnerSpec `json:"runner,omitempty"`
	Shard   *shard.Shard      `json:"shard,omitempty"`
	// TTLSeconds is the lease's heartbeat deadline window.
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
	// CachePath is the coordinator-relative mount of the shared result
	// cache ("" when the coordinator hosts none).
	CachePath string `json:"cache_path,omitempty"`
}

// ResultSubmission is a worker's report for one lease: the partition's
// result set (possibly partial after a mid-run failure) plus the worker's
// trained cost table, which the coordinator folds into its planning model.
type ResultSubmission struct {
	Version int              `json:"version"`
	Results *shard.ResultSet `json:"results"`
	Costs   core.CostTable   `json:"costs,omitempty"`
}

// FailRequest reports that a worker could not run its lease. The partition
// re-enters the queue (bounded by the coordinator's attempt cap).
type FailRequest struct {
	Version int    `json:"version"`
	Error   string `json:"error"`
}

// ResultsResponse streams a sweep's completed scenarios. Complete reports
// whether the sweep has merged; until then Results holds the scenarios
// finished so far (in global index order), so pollers render progress
// incrementally.
type ResultsResponse struct {
	Version  int                `json:"version"`
	State    string             `json:"state"`
	Error    string             `json:"error,omitempty"`
	Complete bool               `json:"complete"`
	Results  []shard.ResultItem `json:"results"`
}

// errorResponse is the JSON body of non-2xx API answers.
type errorResponse struct {
	Error string `json:"error"`
}
