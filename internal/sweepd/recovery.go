package sweepd

import (
	"sort"

	"repro/internal/shard"
)

// Recover replays the write-ahead journal and marks the coordinator
// ready. Replay reconstructs every journaled sweep — manifests, accepted
// result sets (loaded by reference), coverage, terminal states, and the
// cumulative recovery counters — then expires every lease that was
// outstanding at the crash and re-plans exactly the uncovered scenario
// indices of each running sweep into a fresh queue (shard.Replan over
// Manifest.MissingFrom). Because scenario seeds derive from configuration
// content, the recovered sweep's merged output is byte-identical to an
// uninterrupted run, and no completed scenario is ever re-executed.
//
// A coordinator without a journal (NewCoordinator, or Open with an empty
// StateDir) just becomes ready. Recover is not idempotent; call it once,
// before serving.
func (c *Coordinator) Recover() error {
	if c.journal == nil {
		c.ready.Store(true)
		return nil
	}
	recs, err := c.journal.Load()
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	// Outstanding leases in journal order: granted, not yet released.
	outstanding := make(map[string]record)
	var outstandingOrder []string
	haveRef := make(map[string]bool)

	for _, rec := range recs {
		switch rec.Kind {
		case recSubmit, recSnapshot:
			if rec.Sweep == "" || rec.Manifest == nil {
				continue
			}
			sw := &sweep{
				id:       rec.Sweep,
				manifest: rec.Manifest,
				state:    StateRunning,
				covered:  make(map[int]bool, rec.Manifest.Total),
			}
			if rec.Kind == recSnapshot {
				if rec.State != "" {
					sw.state = rec.State
				}
				sw.errMsg = rec.Error
				if rec.Counters != nil {
					sw.counters = *rec.Counters
				}
			}
			c.sweeps[sw.id] = sw
			c.order = append(c.order, sw.id)
			if n := idNumber(sw.id); n > c.nextSweep {
				c.nextSweep = n
			}
			for _, ref := range rec.Refs {
				c.loadResultsLocked(sw, ref, haveRef)
			}
		case recLease:
			sw := c.sweeps[rec.Sweep]
			if sw == nil || rec.Lease == "" {
				continue
			}
			outstanding[rec.Lease] = rec
			outstandingOrder = append(outstandingOrder, rec.Lease)
			if n := idNumber(rec.Lease); n > c.nextLease {
				c.nextLease = n
			}
			// Compaction re-journals still-active leases; only first-grant
			// records count an issuance (the snapshot counters already hold
			// the rest).
			if rec.Speculative && rec.Reason != requeueRecovered {
				sw.counters.SpecIssued++
			}
		case recRelease:
			sw := c.sweeps[rec.Sweep]
			if sw == nil {
				continue
			}
			if _, ok := outstanding[rec.Lease]; ok {
				delete(outstanding, rec.Lease)
			}
			switch rec.Reason {
			case releaseExpired:
				sw.counters.Expired++
			case releaseDiscarded:
				sw.counters.SpecWins++
			}
		case recAccept:
			sw := c.sweeps[rec.Sweep]
			if sw == nil {
				continue
			}
			c.loadResultsLocked(sw, rec.Ref, haveRef)
		case recRequeue:
			sw := c.sweeps[rec.Sweep]
			if sw == nil {
				continue
			}
			sw.counters.Requeues++
			if rec.Reason == requeueGap || rec.Reason == requeueMerge {
				sw.counters.Replans++
			}
		case recState:
			sw := c.sweeps[rec.Sweep]
			if sw == nil {
				continue
			}
			sw.state = rec.State
			sw.errMsg = rec.Error
		case recShutdown:
			// Clean-exit marker: nothing to reconstruct — any leases still
			// outstanding were knowingly abandoned and expire below.
		}
	}

	// Every lease outstanding at the crash is dead: its worker is gone (or
	// will find its lease unknown). Expire them on the record so the
	// counters stay cumulative across the next restart too.
	for _, id := range outstandingOrder {
		rec, ok := outstanding[id]
		if !ok {
			continue
		}
		sw := c.sweeps[rec.Sweep]
		if sw == nil {
			continue
		}
		c.appendBestEffortLocked(record{Kind: recRelease, Sweep: sw.id, Lease: id, Reason: releaseExpired})
		sw.counters.Expired++
		c.logf("recover: lease %s (worker %q, sweep %s) did not survive the restart", id, rec.Worker, sw.id)
	}

	// Rebuild each running sweep's queue from exactly what coverage is
	// missing; a fully covered sweep merges immediately.
	for _, id := range c.order {
		sw := c.sweeps[id]
		if sw.state != StateRunning {
			if sw.state == StateDone && sw.merged == nil {
				if results, err := shard.Merge(sw.manifest, sw.sets); err == nil {
					sw.merged = results
				} else {
					// The journal said done but the referenced sets no longer
					// merge (lost result files): rerun the gap instead of
					// serving nothing.
					sw.state = StateRunning
					sw.errMsg = ""
				}
			}
			if sw.state != StateRunning {
				continue
			}
		}
		missing := sw.manifest.MissingFrom(sw.covered)
		if len(missing) == 0 {
			c.maybeFinishLocked(sw)
			continue
		}
		parts := len(sw.manifest.Shards)
		if parts > len(missing) {
			parts = len(missing)
		}
		shards, err := shard.Replan(sw.manifest, missing, parts)
		if err != nil {
			c.failSweepLocked(sw, err.Error())
			continue
		}
		for _, s := range shards {
			if len(s.Items) == 0 {
				continue
			}
			c.appendBestEffortLocked(record{Kind: recRequeue, Sweep: sw.id, Reason: requeueRecovered})
			sw.counters.Requeues++
			sw.queue = append(sw.queue, pending{shard: s})
		}
		c.logf("recover: sweep %s resumes with %d/%d scenarios to run in %d partitions",
			sw.id, len(missing), sw.manifest.Total, len(sw.queue))
	}

	// Compact so the next restart replays snapshots instead of history.
	c.compactLocked()
	c.ready.Store(true)
	c.logf("recover: %d sweeps restored from %s", len(c.order), c.journal.Dir())
	return nil
}

// loadResultsLocked folds one referenced result set into a sweep,
// skipping references already loaded (a duplicate accept record replays
// idempotently) and references whose file is missing or corrupt (those
// scenarios simply count as uncovered and are re-planned).
func (c *Coordinator) loadResultsLocked(sw *sweep, ref string, haveRef map[string]bool) {
	if ref == "" || haveRef[ref] {
		return
	}
	haveRef[ref] = true
	rs, err := c.journal.ReadResults(ref)
	if err != nil {
		c.logf("recover: dropping result set %s: %v", ref, err)
		return
	}
	sw.sets = append(sw.sets, rs)
	sw.refs = append(sw.refs, ref)
	for _, item := range rs.Results {
		if item.Index >= 0 && item.Index < sw.manifest.Total {
			sw.covered[item.Index] = true
		}
	}
}

// compactLocked rewrites the journal as one snapshot record per sweep (in
// submission order, carrying manifest, state, counters, and result
// references) plus one lease record per still-active lease — the minimal
// prefix a future Recover needs. Runs whenever a sweep completes and once
// after recovery; a compaction error leaves the previous journal intact.
func (c *Coordinator) compactLocked() {
	if c.journal == nil {
		return
	}
	recs := make([]record, 0, len(c.order)+len(c.leases))
	for _, id := range c.order {
		sw := c.sweeps[id]
		ctrs := sw.counters
		recs = append(recs, record{
			Kind:     recSnapshot,
			Sweep:    sw.id,
			Manifest: sw.manifest,
			State:    sw.state,
			Error:    sw.errMsg,
			Refs:     append([]string(nil), sw.refs...),
			Counters: &ctrs,
		})
	}
	ids := make([]string, 0, len(c.leases))
	for id := range c.leases {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		l := c.leases[id]
		recs = append(recs, record{
			Kind: recLease, Sweep: l.sweepID, Lease: id, Worker: l.worker,
			ShardIndex: l.part.shard.Index, Speculative: l.speculative,
			// requeueRecovered doubles as the "re-journaled, not newly
			// granted" marker so replay does not recount SpecIssued.
			Reason: requeueRecovered,
		})
	}
	if err := c.journal.Compact(recs); err != nil {
		c.logf("journal: compaction failed: %v", err)
	}
}
