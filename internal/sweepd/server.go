package sweepd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/core"
)

// maxBodyBytes bounds request bodies; a table-5-scale sweep manifest is a
// few hundred KB, so 16 MiB leaves generous headroom without letting a
// confused client exhaust the coordinator.
const maxBodyBytes = 16 << 20

// Handler serves the coordinator protocol:
//
//	POST /v1/sweeps              submit a sweep (SubmitRequest)
//	GET  /v1/sweeps/{id}         one sweep's status
//	GET  /v1/sweeps/{id}/results completed scenarios so far
//	POST /v1/lease               poll for work (LeaseRequest)
//	POST /v1/lease/{id}/heartbeat
//	POST /v1/lease/{id}/results  submit a lease's results (ResultSubmission)
//	POST /v1/lease/{id}/fail     report a lease failure (FailRequest)
//	GET  /v1/status              whole-service status
//	GET  /v1/healthz             process liveness (always 200)
//	GET  /v1/readyz              200 once journal replay finished, else 503
//	*    /v1/cache/...           remote result cache (core.CacheHandler)
func Handler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if !decodeBody(w, r, &req) {
			return
		}
		resp, err := c.Submit(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := c.SweepStatus(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/sweeps/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		resp, err := c.SweepResults(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodeBody(w, r, &req) {
			return
		}
		resp, err := c.Lease(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/lease/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		if err := c.Heartbeat(r.PathValue("id")); err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/lease/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		var sub ResultSubmission
		if !decodeBody(w, r, &sub) {
			return
		}
		if err := c.Results(r.PathValue("id"), sub); err != nil {
			// Version and payload problems are the client's fault; a missing
			// lease is a conflict the worker resolves by dropping the shard.
			status := http.StatusBadRequest
			if strings.Contains(err.Error(), "not found") {
				status = http.StatusConflict
			}
			writeError(w, status, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/lease/{id}/fail", func(w http.ResponseWriter, r *http.Request) {
		var req FailRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if err := c.Fail(r.PathValue("id"), req); err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Status())
	})
	mux.HandleFunc("GET "+HealthPath, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET "+ReadyPath, func(w http.ResponseWriter, r *http.Request) {
		// Ready gates on journal replay: load balancers and the restart
		// half of the fault-injection tests wait here before dispatching.
		if !c.Ready() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false})
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
	})
	mux.Handle(CachePath+"/", http.StripPrefix(CachePath, core.CacheHandler(c.Cache())))
	return mux
}

// decodeBody strictly decodes one JSON document into v, answering 400 on
// failure. Returns false when the response is already written.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweepd: reading request: %w", err))
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweepd: decoding request: %w", err))
		return false
	}
	return true
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The protocol's value shapes cannot fail to marshal; a broken pipe
	// mid-write is the client's problem.
	_ = json.NewEncoder(w).Encode(v)
}

// writeError answers with the protocol's JSON error body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
