package sweepd

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// testSpec is a fast, deterministic Runner parameterization: the analytic
// markov estimator over a short horizon.
func testSpec() shard.RunnerSpec {
	cfg := core.PaperConfig()
	cfg.SimTime = 30
	cfg.Warmup = 3
	cfg.Replications = 1
	return shard.RunnerSpec{Base: cfg, Seed: 42, Methods: []string{"markov"}, DeriveSeeds: true}
}

// testScenarios sweeps PDT over n points.
func testScenarios(spec shard.RunnerSpec, n int) []core.Scenario {
	out := make([]core.Scenario, n)
	for i := range out {
		cfg := spec.Base
		cfg.PDT = 0.1 * float64(i+1)
		out[i] = core.Scenario{Name: "p" + string(rune('a'+i)), Config: cfg}
	}
	return out
}

// testManifest wraps scenarios in a submit-ready manifest (the submitted
// partition is advisory, so 1 shard is fine).
func testManifest(t *testing.T, spec shard.RunnerSpec, scenarios []core.Scenario) *shard.Manifest {
	t.Helper()
	m, err := shard.NewManifest("test", spec, scenarios, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fakeResults fabricates a result set covering the given shard items —
// coordinator bookkeeping tests don't need real simulations.
func fakeResults(shardIndex int, items []shard.Item) *shard.ResultSet {
	rs := &shard.ResultSet{Version: shard.ResultSetVersion, ShardIndex: shardIndex}
	for _, it := range items {
		rs.Results = append(rs.Results, shard.ResultItem{
			Index:     it.Index,
			Name:      it.Name,
			Config:    it.Config,
			Estimates: []core.Estimate{{Method: "markov"}},
		})
	}
	return rs
}

// fakeClock is a manually advanced clock for lease-expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestSubmitValidation(t *testing.T) {
	c := NewCoordinator(Options{})
	spec := testSpec()
	m := testManifest(t, spec, testScenarios(spec, 2))

	if _, err := c.Submit(SubmitRequest{Version: 99, Manifest: m}); err == nil {
		t.Fatal("foreign protocol version accepted")
	}
	if _, err := c.Submit(SubmitRequest{Version: ProtocolVersion}); err == nil {
		t.Fatal("nil manifest accepted")
	}
	bad := *m
	bad.Version = 99
	if _, err := c.Submit(SubmitRequest{Version: ProtocolVersion, Manifest: &bad}); err == nil {
		t.Fatal("invalid manifest accepted")
	}
	empty, err := shard.NewManifest("empty", spec, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(SubmitRequest{Version: ProtocolVersion, Manifest: empty}); err == nil {
		t.Fatal("empty sweep accepted")
	}
	c.Drain()
	if _, err := c.Submit(SubmitRequest{Version: ProtocolVersion, Manifest: m}); err == nil {
		t.Fatal("draining coordinator accepted a sweep")
	}
}

// TestLeaseLifecycle drives a sweep through grant, heartbeat, expiry,
// requeue, and completion against a fake clock.
func TestLeaseLifecycle(t *testing.T) {
	clock := newFakeClock()
	c := NewCoordinator(Options{LeaseTTL: 10 * time.Second, Clock: clock.Now})
	spec := testSpec()
	m := testManifest(t, spec, testScenarios(spec, 4))
	resp, err := c.Submit(SubmitRequest{Version: ProtocolVersion, Manifest: m, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	id := resp.ID

	l1, err := c.Lease(LeaseRequest{Version: ProtocolVersion, Worker: "w1"})
	if err != nil || l1.Status != LeaseWork {
		t.Fatalf("first lease = (%+v, %v)", l1, err)
	}
	if l1.TTLSeconds != 10 || l1.CachePath != CachePath {
		t.Fatalf("lease terms: %+v", l1)
	}
	// Heartbeats keep a slow worker alive across several TTL windows.
	for i := 0; i < 3; i++ {
		clock.Advance(8 * time.Second)
		if err := c.Heartbeat(l1.LeaseID); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	if st := c.Status(); st.ExpiredLeases != 0 || len(st.Leases) != 1 {
		t.Fatalf("heartbeated lease expired: %+v", st)
	}

	// Silence past the TTL loses the lease; the partition requeues.
	clock.Advance(11 * time.Second)
	st := c.Status()
	if st.ExpiredLeases != 1 || st.Requeues != 1 || len(st.Leases) != 0 {
		t.Fatalf("expiry not recorded: %+v", st)
	}
	if err := c.Heartbeat(l1.LeaseID); err == nil {
		t.Fatal("heartbeat on an expired lease succeeded")
	}
	if err := c.Results(l1.LeaseID, ResultSubmission{Version: ProtocolVersion, Results: fakeResults(0, l1.Shard.Items)}); err == nil {
		t.Fatal("results for an expired lease accepted")
	}

	// Both partitions are grantable again; completing them finishes the
	// sweep.
	for {
		l, err := c.Lease(LeaseRequest{Version: ProtocolVersion, Worker: "w2"})
		if err != nil {
			t.Fatal(err)
		}
		if l.Status != LeaseWork {
			break
		}
		sub := ResultSubmission{Version: ProtocolVersion, Results: fakeResults(l.Shard.Index, l.Shard.Items)}
		if err := c.Results(l.LeaseID, sub); err != nil {
			t.Fatal(err)
		}
	}
	sw, err := c.SweepStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if sw.State != StateDone || sw.Completed != 4 {
		t.Fatalf("sweep did not finish: %+v", sw)
	}
	merged, err := c.Merged(id)
	if err != nil || len(merged) != 4 {
		t.Fatalf("Merged = (%d results, %v)", len(merged), err)
	}
}

// TestPartialSubmissionReplans: a submission covering part of its
// partition replans exactly the gap — never the finished scenarios.
func TestPartialSubmissionReplans(t *testing.T) {
	c := NewCoordinator(Options{DefaultPartitions: 1})
	spec := testSpec()
	m := testManifest(t, spec, testScenarios(spec, 3))
	resp, err := c.Submit(SubmitRequest{Version: ProtocolVersion, Manifest: m})
	if err != nil {
		t.Fatal(err)
	}
	l, err := c.Lease(LeaseRequest{Version: ProtocolVersion, Worker: "w1"})
	if err != nil || l.Status != LeaseWork || len(l.Shard.Items) != 3 {
		t.Fatalf("lease = (%+v, %v)", l, err)
	}
	// Report only the first scenario.
	partial := fakeResults(l.Shard.Index, l.Shard.Items[:1])
	if err := c.Results(l.LeaseID, ResultSubmission{Version: ProtocolVersion, Results: partial}); err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.Replans != 1 || st.Requeues != 1 {
		t.Fatalf("gap not replanned: %+v", st)
	}
	l2, err := c.Lease(LeaseRequest{Version: ProtocolVersion, Worker: "w2"})
	if err != nil || l2.Status != LeaseWork {
		t.Fatalf("recovery lease = (%+v, %v)", l2, err)
	}
	if len(l2.Shard.Items) != 2 {
		t.Fatalf("recovery partition re-runs %d scenarios, want exactly the 2 missing", len(l2.Shard.Items))
	}
	for _, it := range l2.Shard.Items {
		if it.Index == partial.Results[0].Index {
			t.Fatal("recovery partition re-runs a completed scenario")
		}
	}
	if err := c.Results(l2.LeaseID, ResultSubmission{Version: ProtocolVersion, Results: fakeResults(0, l2.Shard.Items)}); err != nil {
		t.Fatal(err)
	}
	if sw, _ := c.SweepStatus(resp.ID); sw.State != StateDone {
		t.Fatalf("sweep not done after recovery: %+v", sw)
	}
}

// TestFailExhaustsAttempts: a partition that keeps failing takes its
// sweep down instead of looping forever.
func TestFailExhaustsAttempts(t *testing.T) {
	c := NewCoordinator(Options{MaxAttempts: 2, DefaultPartitions: 1})
	spec := testSpec()
	m := testManifest(t, spec, testScenarios(spec, 2))
	resp, err := c.Submit(SubmitRequest{Version: ProtocolVersion, Manifest: m})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		l, err := c.Lease(LeaseRequest{Version: ProtocolVersion, Worker: "w"})
		if err != nil {
			t.Fatal(err)
		}
		if l.Status != LeaseWork {
			break
		}
		if err := c.Fail(l.LeaseID, FailRequest{Version: ProtocolVersion, Error: "boom"}); err != nil {
			t.Fatal(err)
		}
		if i > 10 {
			t.Fatal("failing partition never exhausted its attempts")
		}
	}
	sw, err := c.SweepStatus(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sw.State != StateFailed || !strings.Contains(sw.Error, "boom") {
		t.Fatalf("sweep state = %+v, want failed with the worker's error", sw)
	}
}

// TestCostWeightedPlanning: once workers have reported costs, new sweeps
// are partitioned by predicted seconds, not scenario count.
func TestCostWeightedPlanning(t *testing.T) {
	c := NewCoordinator(Options{DefaultPartitions: 2})
	spec := testSpec()
	ids, err := core.EstimatorIDs(spec.Methods...)
	if err != nil {
		t.Fatal(err)
	}

	// One heavy scenario (long horizon) and two light ones, in an order
	// where count balancing would pair the heavy one with a light one.
	heavy := spec.Base
	heavy.SimTime = 3000
	light1, light2 := spec.Base, spec.Base
	light2.PDT = 0.9
	scenarios := []core.Scenario{
		{Name: "heavy", Config: heavy},
		{Name: "light1", Config: light1},
		{Name: "light2", Config: light2},
	}
	m := testManifest(t, spec, scenarios)

	// Prime the cost model through the protocol: a first sweep's worker
	// reports its table alongside results.
	first, err := c.Submit(SubmitRequest{Version: ProtocolVersion, Manifest: m, Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := c.Lease(LeaseRequest{Version: ProtocolVersion, Worker: "w"})
	if err != nil || l.Status != LeaseWork {
		t.Fatalf("lease = (%+v, %v)", l, err)
	}
	costs := core.CostTable{ids[0]: {PerWorkSeconds: 1e-3, AbsSeconds: 1e9}}
	sub := ResultSubmission{Version: ProtocolVersion, Results: fakeResults(0, l.Shard.Items), Costs: costs}
	if err := c.Results(l.LeaseID, sub); err != nil {
		t.Fatal(err)
	}
	if sw, _ := c.SweepStatus(first.ID); sw.State != StateDone {
		t.Fatalf("priming sweep not done: %+v", sw)
	}
	if got := c.CostTable(); got[ids[0]].PerWorkSeconds != 1e-3 {
		t.Fatalf("cost table not adopted: %+v", got)
	}

	// The next sweep's first partition should hold the heavy scenario
	// alone: its predicted cost dwarfs the two light ones combined.
	if _, err := c.Submit(SubmitRequest{Version: ProtocolVersion, Manifest: m}); err != nil {
		t.Fatal(err)
	}
	l2, err := c.Lease(LeaseRequest{Version: ProtocolVersion, Worker: "w"})
	if err != nil || l2.Status != LeaseWork {
		t.Fatalf("weighted lease = (%+v, %v)", l2, err)
	}
	if len(l2.Shard.Items) != 1 || l2.Shard.Items[0].Name != "heavy" {
		t.Fatalf("cost-weighted partition = %+v, want the heavy scenario alone", l2.Shard.Items)
	}
}

// TestServiceEndToEnd runs the full stack in-process: HTTP server, two
// Work loops, remote result cache — and checks the sweep's merged output
// is byte-identical to a single-process run.
func TestServiceEndToEnd(t *testing.T) {
	coord := NewCoordinator(Options{LeaseTTL: 30 * time.Second, DefaultPartitions: 3})
	srv := httptest.NewServer(Handler(coord))
	defer srv.Close()

	spec := testSpec()
	scenarios := testScenarios(spec, 6)
	m := testManifest(t, spec, scenarios)
	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	id, err := client.Submit(SubmitRequest{Manifest: m})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = Work(ctx, WorkerOptions{
				Coordinator: srv.URL,
				Name:        "w" + string(rune('1'+i)),
				Parallelism: 2,
				Client:      srv.Client(),
				Backoff:     Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond, Factor: 2},
			})
		}(i)
	}

	deadline := time.Now().Add(time.Minute)
	for {
		sw, err := client.SweepStatus(id)
		if err != nil {
			t.Fatal(err)
		}
		if sw.State == StateDone {
			break
		}
		if sw.State == StateFailed {
			t.Fatalf("sweep failed: %s", sw.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck: %+v", sw)
		}
		time.Sleep(20 * time.Millisecond)
	}
	coord.Drain()
	wg.Wait()
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i+1, err)
		}
	}

	// The streamed results equal a single-process run of the same batch,
	// byte for byte.
	resp, err := client.SweepResults(id)
	if err != nil || !resp.Complete {
		t.Fatalf("results = (complete=%v, %v)", resp.Complete, err)
	}
	runner, err := spec.NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := runner.RunAll(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(direct) {
		t.Fatalf("%d results, want %d", len(resp.Results), len(direct))
	}
	for i, item := range resp.Results {
		want := direct[i]
		if item.Index != i || item.Seed != want.Seed {
			t.Fatalf("result %d: index/seed mismatch: %+v vs seed %d", i, item, want.Seed)
		}
		got, err := json.Marshal(item.Estimates)
		if err != nil {
			t.Fatal(err)
		}
		ests := make([]core.Estimate, len(want.Estimates))
		for j, e := range want.Estimates {
			ests[j] = *e
		}
		expect, err := json.Marshal(ests)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(expect) {
			t.Fatalf("result %d differs from the single-process run:\n%s\n%s", i, got, expect)
		}
	}

	// Workers trained the coordinator's cost model and populated the
	// shared cache on their way through.
	if len(coord.CostTable()) == 0 {
		t.Fatal("no worker cost reports reached the coordinator")
	}
	if stats, err := coord.Cache().Stats(); err != nil || stats.Entries == 0 {
		t.Fatalf("remote cache stayed empty: (%+v, %v)", stats, err)
	}
}

// TestClientLeaseGone: the client maps lease-endpoint conflicts to
// ErrLeaseGone so workers can tell "abandon" from "retry".
func TestClientLeaseGone(t *testing.T) {
	coord := NewCoordinator(Options{})
	srv := httptest.NewServer(Handler(coord))
	defer srv.Close()
	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Heartbeat("l999"); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("heartbeat on unknown lease: %v", err)
	}
	if err := client.Results("l999", ResultSubmission{Results: &shard.ResultSet{Version: shard.ResultSetVersion}}); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("results on unknown lease: %v", err)
	}
	if err := client.Fail("l999", "x"); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("fail on unknown lease: %v", err)
	}
	if _, err := client.SweepStatus("s999"); err == nil {
		t.Fatal("unknown sweep status succeeded")
	}
	if _, err := NewClient("", nil); err == nil {
		t.Fatal("empty coordinator URL accepted")
	}
}

func TestBackoffDelay(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // saturates
		2 * time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	// The zero value backs off with the defaults rather than spinning.
	var zero Backoff
	if got := zero.Delay(0); got != DefaultBackoff.Base {
		t.Fatalf("zero-value Delay(0) = %v", got)
	}
	if got := zero.Delay(1000); got != DefaultBackoff.Max {
		t.Fatalf("zero-value Delay(1000) = %v, want saturation", got)
	}
}

// TestWorkerIdleExit: a worker with MaxIdlePolls walks away from an idle
// coordinator, and LeaseBye ends a worker immediately.
func TestWorkerIdleExit(t *testing.T) {
	coord := NewCoordinator(Options{})
	srv := httptest.NewServer(Handler(coord))
	defer srv.Close()
	fast := Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Factor: 2}
	err := Work(context.Background(), WorkerOptions{
		Coordinator:  srv.URL,
		Client:       srv.Client(),
		Backoff:      fast,
		MaxIdlePolls: 3,
	})
	if err != nil {
		t.Fatalf("idle worker errored: %v", err)
	}
	coord.Drain()
	err = Work(context.Background(), WorkerOptions{
		Coordinator: srv.URL,
		Client:      srv.Client(),
		Backoff:     fast,
	})
	if err != nil {
		t.Fatalf("drained worker errored: %v", err)
	}
}

// TestWorkerUnreachableCoordinator: a dead coordinator exhausts the error
// budget instead of hanging.
func TestWorkerUnreachableCoordinator(t *testing.T) {
	srv := httptest.NewServer(Handler(NewCoordinator(Options{})))
	url := srv.URL
	srv.Close()
	err := Work(context.Background(), WorkerOptions{
		Coordinator: url,
		Backoff:     Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Factor: 2},
	})
	if err == nil {
		t.Fatal("worker against a dead coordinator returned nil")
	}
}

// TestClientStatusAndBadBodies covers the service-wide status call and the
// server's request hygiene.
func TestClientStatusAndBadBodies(t *testing.T) {
	coord := NewCoordinator(Options{Log: t.Logf})
	srv := httptest.NewServer(Handler(coord))
	defer srv.Close()
	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	id, err := client.Submit(SubmitRequest{Manifest: testManifest(t, spec, testScenarios(spec, 2))})
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sweeps) != 1 || st.Sweeps[0].ID != id || st.Sweeps[0].State != StateRunning {
		t.Fatalf("status = %+v", st)
	}
	resp, err := srv.Client().Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("garbage submit: %d", resp.StatusCode)
	}
	resp, err = srv.Client().Post(srv.URL+"/v1/lease", "application/json", strings.NewReader(`{"version":99}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("foreign-version lease: %d", resp.StatusCode)
	}
}

// TestRunLeasePaths exercises runLease's local-cache and failure branches
// directly.
func TestRunLeasePaths(t *testing.T) {
	coord := NewCoordinator(Options{DefaultPartitions: 1, Log: t.Logf})
	srv := httptest.NewServer(Handler(coord))
	defer srv.Close()
	client, err := NewClient(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	id, err := client.Submit(SubmitRequest{Manifest: testManifest(t, spec, testScenarios(spec, 2))})
	if err != nil {
		t.Fatal(err)
	}
	logf := func(format string, args ...any) { t.Logf(format, args...) }

	// A lease with no payload is failed back, not run.
	runLease(context.Background(), client, WorkerOptions{}, LeaseResponse{LeaseID: "l999", Status: LeaseWork}, logf)

	// A real lease run through a local file cache completes the sweep.
	lease, err := client.Lease("w")
	if err != nil || lease.Status != LeaseWork {
		t.Fatalf("lease = (%+v, %v)", lease, err)
	}
	runLease(context.Background(), client, WorkerOptions{CacheDir: t.TempDir()}, lease, logf)
	if sw, _ := client.SweepStatus(id); sw.State != StateDone {
		t.Fatalf("sweep not done after runLease: %+v", sw)
	}

	// A stale lease id: the shard runs, but submission learns the lease is
	// gone and drops the results quietly.
	stale := lease
	stale.LeaseID = "l999"
	runLease(context.Background(), client, WorkerOptions{DisableRemoteCache: true}, stale, logf)

	// An unusable cache directory (a file in the way) fails the lease.
	bad := lease
	bad.LeaseID = "l998"
	runLease(context.Background(), client, WorkerOptions{CacheDir: "/dev/null/nope"}, bad, logf)
}
