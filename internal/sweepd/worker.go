package sweepd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// Backoff is a bounded exponential backoff policy: Delay(attempt) grows by
// Factor from Base and saturates at Max. It paces both idle polling (so a
// quiet coordinator is not hammered) and retries after protocol errors (so
// a briefly unreachable coordinator is retried, not abandoned).
type Backoff struct {
	Base   time.Duration
	Max    time.Duration
	Factor float64
}

// DefaultBackoff is the worker's polling/retry policy.
var DefaultBackoff = Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second, Factor: 2}

// Delay returns the wait before the given 0-based attempt.
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		b.Base = DefaultBackoff.Base
	}
	if b.Max <= 0 {
		b.Max = DefaultBackoff.Max
	}
	if b.Factor < 1 {
		b.Factor = DefaultBackoff.Factor
	}
	d := float64(b.Base) * math.Pow(b.Factor, float64(attempt))
	if d > float64(b.Max) || math.IsInf(d, 1) {
		return b.Max
	}
	return time.Duration(d)
}

// submitRetries bounds how many times a worker re-sends a finished shard's
// results before giving the partition up; losing a finished shard costs a
// re-run, never correctness.
const submitRetries = 5

// errorBudget is how many consecutive failed polls a worker tolerates
// before concluding the coordinator is gone for good.
const errorBudget = 8

// WorkerOptions parameterizes Work.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Name identifies the worker in coordinator status and logs.
	Name string
	// Parallelism caps the worker Runner's scenario fan-out (0 =
	// NumCPU).
	Parallelism int
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// Backoff paces idle polls and error retries (zero value =
	// DefaultBackoff).
	Backoff Backoff
	// MaxIdlePolls exits the worker after this many consecutive LeaseWait
	// answers (0 = poll until LeaseBye or context cancellation).
	MaxIdlePolls int
	// DisableRemoteCache keeps the worker off the coordinator's shared
	// result cache; each lease then computes everything itself (local
	// in-memory memoization still applies within the Runner).
	DisableRemoteCache bool
	// CacheDir, when set, uses a local file-backed result cache instead of
	// the coordinator's remote one (a fleet on one machine can share it).
	CacheDir string
	// Drain, when non-nil and closed, asks the worker to exit gracefully:
	// the current lease runs to completion (or clean failure) and no new
	// lease is polled for. Cancelling ctx instead aborts the current lease
	// mid-run (it is cleanly failed back to the coordinator).
	Drain <-chan struct{}
	// Log receives progress lines (nil discards them).
	Log func(format string, args ...any)
}

// Work runs the worker loop: poll for a lease (with backoff), run the
// leased shard under a heartbeat, submit results and the trained cost
// table, repeat. It returns nil when the coordinator says LeaseBye, when
// MaxIdlePolls is exhausted, or when ctx is done; it returns an error only
// when the coordinator stays unreachable past the error budget.
func Work(ctx context.Context, opts WorkerOptions) error {
	client, err := NewClient(opts.Coordinator, opts.Client)
	if err != nil {
		return err
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if opts.Name == "" {
		opts.Name = "worker"
	}
	idle, failures := 0, 0
	for {
		if err := sleepCtx(ctx, 0); err != nil {
			return nil // context done between leases: a clean exit
		}
		if opts.Drain != nil {
			select {
			case <-opts.Drain:
				logf("drain requested; exiting between leases")
				return nil
			default:
			}
		}
		resp, err := client.Lease(opts.Name)
		if err != nil {
			failures++
			if failures >= errorBudget {
				return fmt.Errorf("sweepd: %d consecutive poll failures, giving up: %w", failures, err)
			}
			logf("poll failed (%d/%d): %v", failures, errorBudget, err)
			if err := sleepCtx(ctx, opts.Backoff.Delay(failures-1)); err != nil {
				return nil
			}
			continue
		}
		failures = 0
		switch resp.Status {
		case LeaseBye:
			logf("coordinator is draining; exiting")
			return nil
		case LeaseWait:
			idle++
			if opts.MaxIdlePolls > 0 && idle >= opts.MaxIdlePolls {
				logf("no work after %d polls; exiting", idle)
				return nil
			}
			if err := sleepCtx(ctx, opts.Backoff.Delay(idle-1)); err != nil {
				return nil
			}
		case LeaseWork:
			idle = 0
			runLease(ctx, client, opts, resp, logf)
		default:
			failures++
			logf("unknown lease status %q", resp.Status)
		}
	}
}

// runLease executes one granted lease end to end. Failures are reported to
// the coordinator (best effort) so the partition requeues promptly instead
// of waiting out the lease TTL.
func runLease(ctx context.Context, client *Client, opts WorkerOptions, resp LeaseResponse, logf func(string, ...any)) {
	if resp.Runner == nil || resp.Shard == nil {
		logf("lease %s carries no work; dropping", resp.LeaseID)
		_ = client.Fail(resp.LeaseID, "lease carried no runner or shard")
		return
	}
	logf("lease %s: sweep %s shard %d (%d scenarios)",
		resp.LeaseID, resp.SweepID, resp.Shard.Index, len(resp.Shard.Items))

	extra := []core.RunnerOption{core.WithParallelism(opts.Parallelism)}
	switch {
	case opts.CacheDir != "":
		backend, err := core.NewFileBackend(opts.CacheDir)
		if err != nil {
			_ = client.Fail(resp.LeaseID, err.Error())
			return
		}
		extra = append(extra, core.WithCacheBackend(backend))
	case !opts.DisableRemoteCache && resp.CachePath != "":
		backend, err := core.NewHTTPBackend(client.Base()+resp.CachePath, opts.Client)
		if err != nil {
			_ = client.Fail(resp.LeaseID, err.Error())
			return
		}
		extra = append(extra, core.WithCacheBackend(backend))
	}
	runner, err := resp.Runner.NewRunner(extra...)
	if err != nil {
		_ = client.Fail(resp.LeaseID, err.Error())
		return
	}

	// Heartbeat at a third of the TTL; losing the lease (another worker
	// owns the partition now) cancels the shard run.
	runCtx, cancel := context.WithCancel(ctx)
	ttl := time.Duration(resp.TTLSeconds * float64(time.Second))
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		ticker := time.NewTicker(ttl / 3)
		defer ticker.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-ticker.C:
				if err := client.Heartbeat(resp.LeaseID); err != nil {
					if errors.Is(err, ErrLeaseGone) {
						logf("lease %s gone mid-run; abandoning shard", resp.LeaseID)
						cancel()
						return
					}
					logf("heartbeat for lease %s failed: %v", resp.LeaseID, err)
				}
			}
		}
	}()

	rs, runErr := shard.RunShard(runCtx, runner, *resp.Shard)
	cancel()
	<-hbDone
	if runErr != nil {
		logf("lease %s failed: %v", resp.LeaseID, runErr)
		_ = client.Fail(resp.LeaseID, runErr.Error())
		return
	}

	sub := ResultSubmission{Results: rs, Costs: runner.CostSnapshot()}
	for attempt := 0; ; attempt++ {
		err := client.Results(resp.LeaseID, sub)
		if err == nil {
			logf("lease %s: %d results submitted", resp.LeaseID, len(rs.Results))
			return
		}
		if errors.Is(err, ErrLeaseGone) {
			logf("lease %s reclaimed before submission; results dropped", resp.LeaseID)
			return
		}
		if attempt+1 >= submitRetries {
			logf("lease %s: submission failed %d times, dropping: %v", resp.LeaseID, attempt+1, err)
			return
		}
		logf("lease %s: submission retry %d: %v", resp.LeaseID, attempt+1, err)
		if sleepCtx(ctx, opts.Backoff.Delay(attempt)) != nil {
			return
		}
	}
}

// sleepCtx waits d or until ctx is done (returning ctx's error).
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			return nil
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
