// Package workload provides job arrival processes for the CPU models. The
// paper distinguishes open workloads (tasks arrive independently of the
// system state, interrupt-driven) from closed workloads (a new task appears
// only after the previous one completes); the paper's experiments use an
// open Poisson workload, while the closed model is exercised by experiment
// X-3.
package workload

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/xrand"
)

// Source produces successive inter-arrival times for an open workload.
// Implementations may be stateful (e.g. MMPP2 phase); create one Source per
// simulation run.
type Source interface {
	// Next returns the time until the next arrival. A return of +Inf
	// means no further arrivals.
	Next(r *xrand.Rand) float64
	// Rate returns the long-run average arrival rate (jobs per unit
	// time), used for validation and reporting. Zero when unknown.
	Rate() float64
	String() string
}

// ---------------------------------------------------------------------------

// Poisson is the open workload generator of the paper: exponential
// inter-arrival times with the given rate.
type Poisson struct {
	Lambda float64
}

// NewPoisson returns a Poisson source with the given rate.
func NewPoisson(rate float64) *Poisson {
	if rate <= 0 || math.IsNaN(rate) {
		panic(fmt.Sprintf("workload: Poisson rate must be positive, got %v", rate))
	}
	return &Poisson{Lambda: rate}
}

func (p *Poisson) Next(r *xrand.Rand) float64 { return r.ExpFloat64() / p.Lambda }
func (p *Poisson) Rate() float64              { return p.Lambda }
func (p *Poisson) String() string             { return fmt.Sprintf("Poisson(λ=%g)", p.Lambda) }

// ---------------------------------------------------------------------------

// Periodic emits arrivals every Period time units, optionally jittered by a
// zero-or-positive offset distribution. Periodic workloads model the "tasks
// that occur at set intervals" case the paper attributes to closed
// generators (sensing duty cycles).
type Periodic struct {
	Period float64
	Jitter dist.Distribution // optional; added to each gap
}

// NewPeriodic returns a source with constant spacing.
func NewPeriodic(period float64) *Periodic {
	if period <= 0 {
		panic(fmt.Sprintf("workload: period must be positive, got %v", period))
	}
	return &Periodic{Period: period}
}

func (p *Periodic) Next(r *xrand.Rand) float64 {
	gap := p.Period
	if p.Jitter != nil {
		gap += p.Jitter.Sample(r)
	}
	return gap
}

func (p *Periodic) Rate() float64 {
	mean := p.Period
	if p.Jitter != nil {
		mean += p.Jitter.Mean()
	}
	return 1 / mean
}

func (p *Periodic) String() string { return fmt.Sprintf("Periodic(%g)", p.Period) }

// ---------------------------------------------------------------------------

// MMPP2 is a two-phase Markov-modulated Poisson process: the arrival rate
// alternates between Rate0 and Rate1, with exponential phase holding times
// of rates Switch01 and Switch10. MMPPs produce the bursty traffic typical
// of event-driven sensing.
type MMPP2 struct {
	Rate0, Rate1       float64
	Switch01, Switch10 float64

	phase int
}

// NewMMPP2 returns a two-phase MMPP starting in phase 0.
func NewMMPP2(rate0, rate1, switch01, switch10 float64) *MMPP2 {
	if rate0 < 0 || rate1 < 0 || (rate0 == 0 && rate1 == 0) {
		panic("workload: MMPP2 needs at least one positive arrival rate")
	}
	if switch01 <= 0 || switch10 <= 0 {
		panic("workload: MMPP2 switch rates must be positive")
	}
	return &MMPP2{Rate0: rate0, Rate1: rate1, Switch01: switch01, Switch10: switch10}
}

// Next simulates the race between the next arrival and phase switches.
func (m *MMPP2) Next(r *xrand.Rand) float64 {
	elapsed := 0.0
	for {
		var arrRate, swRate float64
		if m.phase == 0 {
			arrRate, swRate = m.Rate0, m.Switch01
		} else {
			arrRate, swRate = m.Rate1, m.Switch10
		}
		total := arrRate + swRate
		dt := r.ExpFloat64() / total
		elapsed += dt
		if r.Float64()*total < arrRate {
			return elapsed
		}
		m.phase = 1 - m.phase
	}
}

// Rate returns the phase-weighted average arrival rate: the stationary
// phase probabilities are switch10 : switch01.
func (m *MMPP2) Rate() float64 {
	p0 := m.Switch10 / (m.Switch01 + m.Switch10)
	return p0*m.Rate0 + (1-p0)*m.Rate1
}

func (m *MMPP2) String() string {
	return fmt.Sprintf("MMPP2(%g/%g)", m.Rate0, m.Rate1)
}

// ---------------------------------------------------------------------------

// Trace replays a recorded sequence of inter-arrival gaps and then reports
// no further arrivals.
type Trace struct {
	gaps []float64
	pos  int
}

// NewTrace copies the given inter-arrival gaps.
func NewTrace(gaps []float64) *Trace {
	for i, g := range gaps {
		if g < 0 || math.IsNaN(g) {
			panic(fmt.Sprintf("workload: trace gap %d is %v", i, g))
		}
	}
	return &Trace{gaps: append([]float64(nil), gaps...)}
}

func (t *Trace) Next(*xrand.Rand) float64 {
	if t.pos >= len(t.gaps) {
		return math.Inf(1)
	}
	g := t.gaps[t.pos]
	t.pos++
	return g
}

// Rate returns the empirical rate over the recorded horizon.
func (t *Trace) Rate() float64 {
	if len(t.gaps) == 0 {
		return 0
	}
	sum := 0.0
	for _, g := range t.gaps {
		sum += g
	}
	if sum == 0 {
		return 0
	}
	return float64(len(t.gaps)) / sum
}

func (t *Trace) String() string { return fmt.Sprintf("Trace(n=%d)", len(t.gaps)) }

// ---------------------------------------------------------------------------

// Closed describes a closed workload: Customers jobs circulate; each
// finished job re-submits after a think time. The paper: "a new task will
// not arrive until the current task has been completed".
type Closed struct {
	// Customers is the population size (>= 1).
	Customers int
	// Think is the think-time distribution between completion and the
	// next submission.
	Think dist.Distribution
}

// Validate checks the configuration.
func (c Closed) Validate() error {
	if c.Customers < 1 {
		return fmt.Errorf("workload: closed workload needs >= 1 customers, got %d", c.Customers)
	}
	if c.Think == nil {
		return fmt.Errorf("workload: closed workload needs a think-time distribution")
	}
	return nil
}

func (c Closed) String() string {
	return fmt.Sprintf("Closed(N=%d, think=%s)", c.Customers, c.Think)
}
