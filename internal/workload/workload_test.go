package workload

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/xrand"
)

func empiricalRate(t *testing.T, s Source, n int) float64 {
	t.Helper()
	r := xrand.New(42)
	total := 0.0
	for i := 0; i < n; i++ {
		g := s.Next(r)
		if g < 0 {
			t.Fatalf("%s produced negative gap %v", s, g)
		}
		if math.IsInf(g, 1) {
			return float64(i) / total
		}
		total += g
	}
	return float64(n) / total
}

func TestPoissonRate(t *testing.T) {
	p := NewPoisson(2.5)
	got := empiricalRate(t, p, 200000)
	if math.Abs(got-2.5)/2.5 > 0.02 {
		t.Fatalf("empirical rate = %v, want ~2.5", got)
	}
	if p.Rate() != 2.5 {
		t.Fatal("declared rate wrong")
	}
}

func TestPoissonValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPoisson(0) accepted")
		}
	}()
	NewPoisson(0)
}

func TestPeriodicExact(t *testing.T) {
	p := NewPeriodic(0.5)
	r := xrand.New(1)
	for i := 0; i < 10; i++ {
		if p.Next(r) != 0.5 {
			t.Fatal("periodic gap not constant")
		}
	}
	if p.Rate() != 2 {
		t.Fatalf("rate = %v, want 2", p.Rate())
	}
}

func TestPeriodicWithJitter(t *testing.T) {
	p := NewPeriodic(1)
	p.Jitter = dist.NewUniform(0, 0.5)
	got := empiricalRate(t, p, 100000)
	want := 1 / 1.25
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("jittered rate = %v, want ~%v", got, want)
	}
}

func TestPeriodicValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPeriodic(0) accepted")
		}
	}()
	NewPeriodic(0)
}

func TestMMPP2Rate(t *testing.T) {
	// Phase 0 rate 10, phase 1 rate 1, equal switch rates: average 5.5.
	m := NewMMPP2(10, 1, 0.5, 0.5)
	if math.Abs(m.Rate()-5.5) > 1e-12 {
		t.Fatalf("declared rate = %v, want 5.5", m.Rate())
	}
	got := empiricalRate(t, m, 300000)
	if math.Abs(got-5.5)/5.5 > 0.05 {
		t.Fatalf("empirical rate = %v, want ~5.5", got)
	}
}

func TestMMPP2Burstiness(t *testing.T) {
	// An MMPP with very different phase rates has inter-arrival CV > 1
	// (burstier than Poisson).
	m := NewMMPP2(20, 0.2, 0.1, 0.1)
	r := xrand.New(7)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		g := m.Next(r)
		sum += g
		sumSq += g * g
	}
	mean := sum / n
	cv2 := (sumSq/n - mean*mean) / (mean * mean)
	if cv2 < 1.2 {
		t.Fatalf("MMPP CV^2 = %v, want clearly > 1", cv2)
	}
}

func TestMMPP2Validation(t *testing.T) {
	for i, f := range []func(){
		func() { NewMMPP2(0, 0, 1, 1) },
		func() { NewMMPP2(1, 1, 0, 1) },
		func() { NewMMPP2(1, 1, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d accepted", i)
				}
			}()
			f()
		}()
	}
}

func TestTraceReplaysAndEnds(t *testing.T) {
	tr := NewTrace([]float64{1, 2, 3})
	r := xrand.New(1)
	for i, want := range []float64{1, 2, 3} {
		if got := tr.Next(r); got != want {
			t.Fatalf("gap %d = %v, want %v", i, got, want)
		}
	}
	if !math.IsInf(tr.Next(r), 1) {
		t.Fatal("exhausted trace did not return +Inf")
	}
	if math.Abs(tr.Rate()-0.5) > 1e-12 {
		t.Fatalf("trace rate = %v, want 0.5", tr.Rate())
	}
}

func TestTraceCopiesInput(t *testing.T) {
	gaps := []float64{1, 1}
	tr := NewTrace(gaps)
	gaps[0] = 99
	r := xrand.New(1)
	if tr.Next(r) != 1 {
		t.Fatal("trace aliased caller slice")
	}
}

func TestTraceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative gap accepted")
		}
	}()
	NewTrace([]float64{-1})
}

func TestClosedValidate(t *testing.T) {
	good := Closed{Customers: 3, Think: dist.ExpMean(1)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Closed{Customers: 0, Think: dist.ExpMean(1)}).Validate(); err == nil {
		t.Fatal("zero customers accepted")
	}
	if err := (Closed{Customers: 1}).Validate(); err == nil {
		t.Fatal("nil think accepted")
	}
}

func TestStrings(t *testing.T) {
	srcs := []Source{NewPoisson(1), NewPeriodic(1), NewMMPP2(1, 2, 1, 1), NewTrace([]float64{1})}
	for _, s := range srcs {
		if s.String() == "" {
			t.Fatalf("%T has empty String", s)
		}
	}
	if (Closed{Customers: 1, Think: dist.ExpMean(1)}).String() == "" {
		t.Fatal("Closed has empty String")
	}
}
