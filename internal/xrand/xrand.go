// Package xrand provides a small, fast, reproducible pseudo-random number
// generator for the simulation engines in this repository.
//
// The generator is xoshiro256++ seeded through SplitMix64, the combination
// recommended by Blackman & Vigna. Unlike math/rand, the stream produced for
// a given seed is guaranteed stable across Go releases, which matters for
// reproducing the experiment tables in EXPERIMENTS.md bit-for-bit.
//
// Independent substreams for replicated experiments are derived with
// NewStream, which hashes (seed, stream id) through SplitMix64 so that
// replications started from adjacent ids are statistically independent.
package xrand

import "math"

// Rand is a xoshiro256++ pseudo-random number generator. It is not safe for
// concurrent use; create one Rand per goroutine (see NewStream).
type Rand struct {
	s [4]uint64
}

// splitMix64 advances the SplitMix64 state and returns the next output.
// It is used only for seeding, as recommended by the xoshiro authors.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Any seed value,
// including zero, yields a valid non-degenerate state.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// NewStream returns a generator for substream id of the given master seed.
// Streams with different ids are independent for all practical purposes:
// the (seed, id) pair is diffused through two rounds of SplitMix64 before
// seeding the xoshiro state.
func NewStream(seed, id uint64) *Rand {
	r := &Rand{}
	r.SeedStream(seed, id)
	return r
}

// SeedStream reseeds the generator in place to the state NewStream(seed, id)
// would return, without allocating. Pooled simulation engines use it to
// re-arm their embedded generator between runs.
func (r *Rand) SeedStream(seed, id uint64) {
	state := seed
	_ = splitMix64(&state)
	state ^= 0x9e3779b97f4a7c15 * (id + 1)
	_ = splitMix64(&state)
	r.s[0] = splitMix64(&state)
	r.s[1] = splitMix64(&state)
	r.s[2] = splitMix64(&state)
	r.s[3] = splitMix64(&state)
	r.normalize()
}

// Seed resets the generator state from seed via SplitMix64.
func (r *Rand) Seed(seed uint64) {
	state := seed
	r.s[0] = splitMix64(&state)
	r.s[1] = splitMix64(&state)
	r.s[2] = splitMix64(&state)
	r.s[3] = splitMix64(&state)
	r.normalize()
}

// normalize guards against the (essentially impossible) all-zero state,
// which is the single fixed point of the xoshiro transition.
func (r *Rand) normalize() {
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1); it never returns 0, which
// makes it safe as input to logarithmic inverse-CDF transforms.
func (r *Rand) Float64Open() float64 {
	for {
		v := (float64(r.Uint64()>>11) + 0.5) / (1 << 53)
		if v > 0 && v < 1 {
			return v
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless bounded generation is used to avoid modulo
// bias without a division in the common case.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// StreamVersion identifies the draw law of this package's non-uniform
// samplers. Any change that alters the values (or the count of underlying
// Uint64 draws) produced for a given seed — such as the ziggurat
// ExpFloat64 introduced in version 3 — must bump it, so result caches keyed
// on it (core.CacheKey) treat entries computed under the old law as misses
// instead of silently mixing streams.
//
// History: 1 — math/rand-free xoshiro core with inverse-CDF exponentials;
// 2 — lazy time-weighted statistics (no draw change, engine-level rev);
// 3 — table-driven exponential ziggurat replacing the inverse CDF.
const StreamVersion = 3

// ExpFloat64 returns an exponentially distributed value with rate 1
// (mean 1) using a 256-layer ziggurat (Marsaglia & Tsang) over the
// committed tables in ziggurat_tables.go.
//
// ~98.9% of calls cost one Uint64 draw, a table compare and one multiply;
// the wedge and tail paths fall back to math.Exp/math.Log. The sampled law
// is exactly Exp(1) by the ziggurat construction — only the per-seed value
// sequence differs from the pre-version-3 inverse CDF, which is why
// StreamVersion gates result caches. The tables are committed constants
// (not init-computed), so the stream cannot drift across platforms whose
// libm-style math functions differ in the last ulp.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Uint64()
		j := u >> 11  // 53-bit horizontal position
		i := u & 0xff // layer index (bits disjoint from j)
		if j < expZigKe[i] {
			return float64(j) * expZigWe[i]
		}
		if i == 0 {
			// Tail: by memorylessness, r + Exp(1) conditioned on > r.
			return expZigR - math.Log(r.Float64Open())
		}
		x := float64(j) * expZigWe[i]
		if expZigFe[i]+r.Float64()*(expZigFe[i-1]-expZigFe[i]) < math.Exp(-x) {
			return x
		}
	}
}

// NormFloat64 returns a standard normal value using the Marsaglia polar
// method. The spare value is intentionally not cached so that the stream
// consumed per call is easier to reason about in reproducibility tests.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Jump advances the generator by 2^128 steps, equivalent to generating
// 2^128 Uint64 values. It can be used to partition a single stream into
// non-overlapping blocks.
func (r *Rand) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
	r.normalize()
}

// State returns a copy of the internal state, for checkpoint/restore.
func (r *Rand) State() [4]uint64 { return r.s }

// Restore sets the internal state to a previously captured State.
func (r *Rand) Restore(s [4]uint64) {
	r.s = s
	r.normalize()
}
