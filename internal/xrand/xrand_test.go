package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs out of 100", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	v := r.Uint64()
	w := r.Uint64()
	if v == 0 && w == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64OpenRange(t *testing.T) {
	r := New(8)
	for i := 0; i < 100000; i++ {
		f := r.Float64Open()
		if f <= 0 || f >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(10)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	// Chi-squared test with 9 degrees of freedom; 27.9 is the 99.9% quantile.
	expected := float64(trials) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.9 {
		t.Fatalf("chi-squared = %v, uniformity rejected", chi2)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(12)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.01 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(14)
	for _, n := range []int{0, 1, 2, 5, 50} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length = %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(99, 0)
	b := NewStream(99, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent streams collided %d times", same)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(5, 17)
	b := NewStream(5, 17)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical streams diverged")
		}
	}
}

func TestStateRestore(t *testing.T) {
	r := New(77)
	r.Uint64()
	s := r.State()
	want := make([]uint64, 10)
	for i := range want {
		want[i] = r.Uint64()
	}
	r.Restore(s)
	for i := range want {
		if got := r.Uint64(); got != want[i] {
			t.Fatalf("restored stream diverged at %d: got %d want %d", i, got, want[i])
		}
	}
}

func TestJumpProducesDisjointBlocks(t *testing.T) {
	a := New(3)
	b := New(3)
	b.Jump()
	seen := make(map[uint64]bool, 2000)
	for i := 0; i < 1000; i++ {
		seen[a.Uint64()] = true
	}
	for i := 0; i < 1000; i++ {
		if seen[b.Uint64()] {
			t.Fatal("jumped stream overlapped the base stream within 1000 draws")
		}
	}
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	f := func(x, y uint64) bool {
		hi, lo := mul64(x, y)
		// Verify via 32-bit schoolbook reconstruction.
		x0, x1 := x&0xffffffff, x>>32
		y0, y1 := y&0xffffffff, y>>32
		w0 := x0 * y0
		t1 := x1*y0 + w0>>32
		w1 := t1&0xffffffff + x0*y1
		wantHi := x1*y1 + t1>>32 + w1>>32
		wantLo := x * y
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnNeverEscapesBoundProperty(t *testing.T) {
	r := New(123)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Float64()
	}
	_ = sink
}

func BenchmarkExpFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.ExpFloat64()
	}
	_ = sink
}
