package xrand

import (
	"math"
	"sort"
	"testing"
)

// TestZigguratTableProvenance recomputes the committed tables from the
// defining Marsaglia–Tsang recurrence (see gen_ziggurat.go) and requires
// exact equality. This pins where the constants came from and fails loudly
// if anyone regenerates them on a platform whose math.Log/math.Exp round
// differently — the committed values, not the local recomputation, are the
// source of truth for the stream.
func TestZigguratTableProvenance(t *testing.T) {
	const (
		r = 7.697117470131487
		v = 3.949659822581572e-3
	)
	m2 := math.Ldexp(1, 53)
	var ke [256]uint64
	var we, fe [256]float64
	de, te := r, r
	q := v / math.Exp(-de)
	ke[0] = uint64((de / q) * m2)
	ke[1] = 0
	we[0] = q / m2
	we[255] = de / m2
	fe[0] = 1.0
	fe[255] = math.Exp(-de)
	for i := 254; i >= 1; i-- {
		de = -math.Log(v/de + math.Exp(-de))
		ke[i+1] = uint64((de / te) * m2)
		te = de
		fe[i] = math.Exp(-de)
		we[i] = de / m2
	}
	if expZigR != r {
		t.Errorf("expZigR = %v, want %v", expZigR, r)
	}
	for i := 0; i < 256; i++ {
		if ke[i] != expZigKe[i] {
			t.Errorf("ke[%d] = %d, committed %d", i, ke[i], expZigKe[i])
		}
		if we[i] != expZigWe[i] {
			t.Errorf("we[%d] = %v, committed %v", i, we[i], expZigWe[i])
		}
		if fe[i] != expZigFe[i] {
			t.Errorf("fe[%d] = %v, committed %v", i, fe[i], expZigFe[i])
		}
	}
	// Structural sanity of the recurrence itself: the top layer must close
	// the construction — its area x[1]*(f(0)-f(x[1])) equals the common
	// layer area v (up to float round-off), and the base strip q covers the
	// tail: q*f(r) = v.
	x1 := we[1] * m2
	if a := x1 * (1 - fe[1]); math.Abs(a-v) > 1e-9 {
		t.Errorf("top layer area = %v, want ~%v", a, v)
	}
	if a := q * math.Exp(-r); math.Abs(a-v) > 1e-18 {
		t.Errorf("base strip area = %v, want %v", a, v)
	}
}

// TestZigguratMonotoneTables: the layer edges x[i] must be strictly
// increasing and the densities strictly decreasing — the invariants the
// accept/wedge logic relies on.
func TestZigguratMonotoneTables(t *testing.T) {
	for i := 1; i < 256; i++ {
		if expZigWe[i] <= expZigWe[i-1] && i > 1 {
			t.Fatalf("we not increasing at %d", i)
		}
		if expZigFe[i] >= expZigFe[i-1] {
			t.Fatalf("fe not decreasing at %d", i)
		}
		if expZigKe[i] > uint64(1)<<53 {
			t.Fatalf("ke[%d] = %d exceeds the 53-bit draw range", i, expZigKe[i])
		}
	}
}

// TestExpFloat64Distribution runs a Kolmogorov–Smirnov test of the
// ziggurat samples against the exact Exp(1) CDF. With n = 200000 the 99.9%
// critical value of D*sqrt(n) is ~1.95; a broken table or accept condition
// moves whole percentiles and fails by orders of magnitude.
func TestExpFloat64Distribution(t *testing.T) {
	r := New(42)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.ExpFloat64()
		if xs[i] < 0 || math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
			t.Fatalf("invalid sample %v", xs[i])
		}
	}
	sort.Float64s(xs)
	d := 0.0
	for i, x := range xs {
		f := 1 - math.Exp(-x)
		lo := f - float64(i)/n
		hi := float64(i+1)/n - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	if stat := d * math.Sqrt(n); stat > 1.95 {
		t.Fatalf("KS statistic %.3f exceeds the 99.9%% critical value", stat)
	}
	// Second moment: Var = 1 for Exp(1).
	sum, sumSq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	if v := sumSq/n - mean*mean; math.Abs(v-1) > 0.03 {
		t.Fatalf("exponential variance = %v, want ~1", v)
	}
}

// TestExpFloat64TailCovered: samples beyond the rightmost layer edge must
// occur at their exponential rate (P ≈ 4.5e-4), proving the tail branch is
// live and correctly placed.
func TestExpFloat64TailCovered(t *testing.T) {
	r := New(7)
	const n = 400000
	tail := 0
	for i := 0; i < n; i++ {
		if r.ExpFloat64() > expZigR {
			tail++
		}
	}
	// Expected ~n*exp(-r) ≈ 182; require a loose [60, 420] band (>8 sigma).
	want := float64(n) * math.Exp(-expZigR)
	if float64(tail) < want/3 || float64(tail) > want*2.3 {
		t.Fatalf("tail samples = %d, want ~%.0f", tail, want)
	}
}

// TestExpFloat64StreamPinned pins the first draws of a fixed seed. These
// golden values define draw-law version 3 (see StreamVersion): if they ever
// change, the law changed, and StreamVersion must be bumped so cached
// results miss.
func TestExpFloat64StreamPinned(t *testing.T) {
	if StreamVersion != 3 {
		t.Fatalf("StreamVersion = %d; this pin covers version 3", StreamVersion)
	}
	r := New(1)
	got := make([]float64, 8)
	for i := range got {
		got[i] = r.ExpFloat64()
	}
	r2 := New(1)
	for i := range got {
		if w := r2.ExpFloat64(); w != got[i] {
			t.Fatalf("non-deterministic draw %d", i)
		}
	}
	// Cross-check against a scalar rejection-free reference: replay the
	// same Uint64 stream through an independent implementation of the
	// ziggurat accept rule.
	ref := New(1)
	for i := 0; i < 8; i++ {
		if w := refZigguratExp(ref); w != got[i] {
			t.Fatalf("draw %d = %v, reference ziggurat %v", i, got[i], w)
		}
	}
}

// refZigguratExp is an independently written reference of the ziggurat
// sampling rule used by TestExpFloat64StreamPinned.
func refZigguratExp(r *Rand) float64 {
	for {
		u := r.Uint64()
		j, i := u>>11, u&255
		switch {
		case j < expZigKe[i]:
			return float64(j) * expZigWe[i]
		case i == 0:
			return expZigR - math.Log(r.Float64Open())
		default:
			x := float64(j) * expZigWe[i]
			f := expZigFe[i] + r.Float64()*(expZigFe[i-1]-expZigFe[i])
			if f < math.Exp(-x) {
				return x
			}
		}
	}
}
