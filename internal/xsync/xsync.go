// Package xsync provides small shared concurrency helpers used by the
// simulation engines. It exists so the deterministic fan-out idiom — spawn
// min(n, GOMAXPROCS) workers, feed them indices, write results into
// index-addressed slots — lives in one place instead of being copied into
// every package that parallelizes replications.
package xsync

import (
	"runtime"
	"sync"
)

// ParallelFor runs body(0), ..., body(n-1) across min(n, GOMAXPROCS)
// goroutines and waits for completion. Iteration order is unspecified;
// callers must write into index-addressed slots (results[i] = ...) to stay
// deterministic. For n <= 1 or a single worker the loop runs inline on the
// calling goroutine.
func ParallelFor(n int, body func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				body(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
