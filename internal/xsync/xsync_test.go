package xsync

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ParallelFor(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestParallelForSmallN(t *testing.T) {
	ran := 0
	ParallelFor(0, func(int) { ran++ })
	if ran != 0 {
		t.Fatal("ParallelFor(0) ran the body")
	}
	ParallelFor(1, func(int) { ran++ })
	if ran != 1 {
		t.Fatalf("ParallelFor(1) ran %d times", ran)
	}
}

func TestParallelForUsesMultipleGoroutines(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-CPU environment")
	}
	// Record the number of distinct goroutines that execute the body; with
	// n >> workers at least one worker goroutine must run more than once,
	// and the total must equal n.
	var total int64
	ParallelFor(64, func(int) { atomic.AddInt64(&total, 1) })
	if total != 64 {
		t.Fatalf("ran %d of 64 iterations", total)
	}
}
