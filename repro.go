// Package repro reproduces Shareef & Zhu, "Energy Modeling of Processors in
// Wireless Sensor Networks based on Petri Nets" (2008), and grows it into a
// batch-oriented evaluation system for CPU energy models.
//
// The public surface is the Runner API: a Runner owns a base configuration,
// a set of estimators resolved from a registry, and a worker pool; RunBatch
// fans scenarios (sweep points) out concurrently with context cancellation
// and deterministic per-scenario seeding:
//
//	r, err := repro.New(
//		repro.WithConfig(cfg),
//		repro.WithSeed(42),
//		repro.WithParallelism(8),
//		repro.WithMethods("sim", "markov", "petrinet"),
//	)
//	results, err := r.RunAll(ctx, scenarios) // or RunBatch for a stream
//
// Estimators are pluggable: Register adds a named factory, Methods returns
// the paper's three methods, and MethodNames lists everything registered
// (including the ErlangMarkov phase-type extension, spec "erlangK").
//
// The full machinery lives in the internal packages:
//
//   - internal/petri    — the stochastic Petri-net engine (EDSPN),
//   - internal/markov   — CTMCs and the supplementary-variable closed form,
//   - internal/cpu      — the event-driven CPU simulator,
//   - internal/dist     — service and firing-delay distributions,
//   - internal/energy   — power tables and energy accounting,
//   - internal/experiments — regeneration of every paper table and figure.
//
// See examples/ for runnable programs (examples/quickstart and
// examples/batchsweep show the Runner) and cmd/wsnenergy for the experiment
// harness.
package repro

import (
	"context"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/petri"
)

// Config parameterizes the CPU energy model shared by all estimators.
type Config = core.Config

// Estimate is the common result of every modeling method.
type Estimate = core.Estimate

// NodeMetrics is the whole-sensor-node slice of an Estimate (power by
// subsystem, radio throughput, battery lifetime); zero for CPU-only
// methods.
type NodeMetrics = core.NodeMetrics

// Estimator is a CPU energy modeling method. EstimateContext is the primary
// entry point — estimators observe the context and abort long simulations
// mid-replication on cancellation; Estimate is the context-free convenience
// form.
type Estimator = core.Estimator

// LegacyEstimator is the pre-context estimator contract (Name plus
// Estimate); upgrade one with AdaptEstimator.
type LegacyEstimator = core.LegacyEstimator

// Factory builds an Estimator from an optional method-specific argument;
// see Register.
type Factory = core.Factory

// The paper's three methods plus the phase-type extension.
type (
	// Simulation is the event-driven software simulator (ground truth).
	Simulation = core.Simulation
	// Markov is the closed-form supplementary-variable model.
	Markov = core.Markov
	// PetriNet is the Figure-3 EDSPN executed by the Petri-net engine.
	PetriNet = core.PetriNet
	// ErlangMarkov is the Erlang phase-type CTMC extension.
	ErlangMarkov = core.ErlangMarkov
)

// PowerModel is a per-state power table in milliwatts.
type PowerModel = energy.PowerModel

// Fractions is the per-state share of time.
type Fractions = energy.Fractions

// PXA271 is the paper's Table-3 power table.
var PXA271 = energy.PXA271

// PaperConfig returns the paper's evaluation configuration (Tables 2-3).
func PaperConfig() Config { return core.PaperConfig() }

// Register adds an estimator factory to the registry under a canonical name
// and optional aliases. Names are case-insensitive; registering a taken
// name is an error. The paper's methods self-register as "simulation"
// ("sim"), "markov", "petrinet" ("petri", "pn") and "erlang"
// ("erlangmarkov").
func Register(name string, factory Factory, aliases ...string) error {
	return core.Register(name, factory, aliases...)
}

// Methods returns the paper's three estimators in presentation order
// (simulation first, as the benchmark), resolved through the registry.
func Methods() []Estimator { return core.Methods() }

// MethodNames returns the canonical names of every registered estimator.
func MethodNames() []string { return core.MethodNames() }

// NewEstimator resolves a method spec such as "markov", "sim" or "erlang16"
// through the registry.
func NewEstimator(spec string) (Estimator, error) { return core.NewEstimator(spec) }

// NewEstimators resolves a list of method specs in order.
func NewEstimators(specs ...string) ([]Estimator, error) { return core.NewEstimators(specs...) }

// AdaptEstimator upgrades a pre-context estimator (Name plus Estimate) to
// the full Estimator interface. The shim's EstimateContext checks the
// context once before delegating; implement EstimateContext natively for
// mid-run cancellation.
func AdaptEstimator(e LegacyEstimator) Estimator { return core.AdaptEstimator(e) }

// CompareAll runs every estimator on the same configuration.
//
// Deprecated: build a Runner and use Runner.Run or Runner.RunBatch, which
// add worker-pool parallelism, context cancellation and deterministic
// per-scenario seeding. CompareAll remains for one-off comparisons; it is
// CompareAllContext with a background context.
func CompareAll(cfg Config, ests []Estimator) ([]*Estimate, error) {
	return core.CompareAll(cfg, ests)
}

// CompareAllContext runs every estimator on the same configuration through
// the Runner's context-aware path: the estimators share the worker pool and
// the process-wide result cache, and a cancelled context aborts in-flight
// simulations mid-replication. The configuration's Seed is used verbatim.
func CompareAllContext(ctx context.Context, cfg Config, ests []Estimator) ([]*Estimate, error) {
	return core.CompareAllContext(ctx, cfg, ests)
}

// BuildCPUNet constructs the paper's Figure-3 Petri net for direct use with
// the internal/petri engine.
func BuildCPUNet(cfg Config) *petri.Net { return core.BuildCPUNet(cfg) }
