// Package repro is the public facade of the reproduction of Shareef & Zhu,
// "Energy Modeling of Processors in Wireless Sensor Networks based on Petri
// Nets" (2008).
//
// The facade re-exports the core modeling API; the full machinery lives in
// the internal packages:
//
//   - internal/petri    — the stochastic Petri-net engine (EDSPN),
//   - internal/markov   — CTMCs and the supplementary-variable closed form,
//   - internal/cpu      — the event-driven CPU simulator,
//   - internal/energy   — power tables and energy accounting,
//   - internal/experiments — regeneration of every paper table and figure.
//
// Quick start:
//
//	cfg := repro.PaperConfig()
//	cfg.PDT, cfg.PUD = 0.5, 0.001
//	results, err := repro.CompareAll(cfg, repro.Methods())
//
// See examples/ for runnable programs and cmd/wsnenergy for the experiment
// harness.
package repro

import (
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/petri"
)

// Config parameterizes the CPU energy model shared by all estimators.
type Config = core.Config

// Estimate is the common result of every modeling method.
type Estimate = core.Estimate

// Estimator is a CPU energy modeling method.
type Estimator = core.Estimator

// The paper's three methods plus the phase-type extension.
type (
	// Simulation is the event-driven software simulator (ground truth).
	Simulation = core.Simulation
	// Markov is the closed-form supplementary-variable model.
	Markov = core.Markov
	// PetriNet is the Figure-3 EDSPN executed by the Petri-net engine.
	PetriNet = core.PetriNet
	// ErlangMarkov is the Erlang phase-type CTMC extension.
	ErlangMarkov = core.ErlangMarkov
)

// PowerModel is a per-state power table in milliwatts.
type PowerModel = energy.PowerModel

// Fractions is the per-state share of time.
type Fractions = energy.Fractions

// PXA271 is the paper's Table-3 power table.
var PXA271 = energy.PXA271

// PaperConfig returns the paper's evaluation configuration (Tables 2-3).
func PaperConfig() Config { return core.PaperConfig() }

// Methods returns the paper's three estimators in presentation order.
func Methods() []Estimator { return core.Methods() }

// CompareAll runs every estimator on the same configuration.
func CompareAll(cfg Config, ests []Estimator) ([]*Estimate, error) {
	return core.CompareAll(cfg, ests)
}

// BuildCPUNet constructs the paper's Figure-3 Petri net for direct use with
// the internal/petri engine.
func BuildCPUNet(cfg Config) *petri.Net { return core.BuildCPUNet(cfg) }
