package repro

import (
	"repro/internal/core"
)

// Scenario is one evaluation point of a batch: a named model configuration.
// A zero-valued Config means "use the Runner's base configuration"; for a
// variation on the base, copy Runner.BaseConfig and modify it:
//
//	c := runner.BaseConfig()
//	c.PDT = 0.3
//	s := repro.Scenario{Name: "PDT=0.3", Config: c}
type Scenario = core.Scenario

// Result is the outcome of one scenario: the scenario's index in the batch,
// its effective seed, one Estimate per estimator, or an error.
type Result = core.Result

// Runner evaluates batches of scenarios across a fixed estimator set with a
// bounded worker pool. Construct it with New; a Runner is safe for
// concurrent use and reusable across batches. RunBatch streams results in
// completion order with context cancellation; RunAll collects them in input
// order.
type Runner = core.Runner

// Option configures a Runner under construction; see WithConfig, WithSeed,
// WithParallelism, WithEstimators and WithMethods.
type Option = core.RunnerOption

// New builds a Runner from functional options.
func New(opts ...Option) (*Runner, error) { return core.NewRunner(opts...) }

// WithConfig sets the base model configuration (default PaperConfig).
func WithConfig(cfg Config) Option { return core.WithConfig(cfg) }

// WithSeed sets the master seed from which every scenario's RNG seed is
// derived (default: the base configuration's seed). Two Runners with equal
// seeds produce bit-identical results for equal batches, at any parallelism.
func WithSeed(seed uint64) Option { return core.WithSeed(seed) }

// WithParallelism bounds the number of scenarios evaluated concurrently
// (default runtime.GOMAXPROCS(0); 1 forces sequential execution).
func WithParallelism(n int) Option { return core.WithParallelism(n) }

// WithEstimators sets the estimator list (default Methods(), the paper's
// three in presentation order).
func WithEstimators(ests ...Estimator) Option { return core.WithEstimators(ests...) }

// WithMethods resolves estimators by registered name through the registry,
// e.g. WithMethods("sim", "markov", "erlang32").
func WithMethods(specs ...string) Option { return core.WithMethods(specs...) }

// WithCache enables or disables result memoization (default enabled): a
// scenario whose effective configuration and estimator name match a
// previously computed result returns the cached Estimate instead of
// re-running the estimator. Disable it for estimators whose Name does not
// uniquely identify a pure function of the Config.
func WithCache(enabled bool) Option { return core.WithCache(enabled) }

// WithSeedDerivation enables or disables per-scenario seed derivation
// (default enabled). Disable it for fixed-seed experiments where every
// scenario must run with its Config.Seed exactly as given — the contract
// of the extension experiments and CompareAll.
func WithSeedDerivation(enabled bool) Option { return core.WithSeedDerivation(enabled) }

// CacheBackend stores memoized estimator results behind the Runner; see
// NewMemoryCacheBackend and NewFileCacheBackend for the built-in
// implementations. Backends must be safe for concurrent use.
type CacheBackend = core.CacheBackend

// CacheKey identifies one memoized estimator result: effective Config,
// method name, and estimator implementation identity. Encode/Hash yield
// its canonical, versioned wire form for shared stores.
type CacheKey = core.CacheKey

// CacheStats reports a backend's entry and hit counts.
type CacheStats = core.CacheStats

// NewMemoryCacheBackend returns a fresh process-local result cache with
// epoch eviction — the same implementation as the process-wide default,
// but private to the Runners it is handed to.
func NewMemoryCacheBackend() CacheBackend { return core.NewMemoryBackend() }

// NewFileCacheBackend opens (creating if needed) a file-backed result
// cache rooted at dir, shareable across processes — the backend behind
// `wsnenergy shard run -cache`.
func NewFileCacheBackend(dir string) (CacheBackend, error) { return core.NewFileBackend(dir) }

// NewLRUCacheBackend returns a result cache bounded to at most max
// entries (non-positive: 65536) by least-recently-used eviction — the
// backend for long-lived services that must keep the in-flight working
// set warm while old sweeps age out, rather than dropping everything at
// once like the memory backend's epoch eviction. Evicted entries are
// counted in CacheStats.Evictions.
func NewLRUCacheBackend(max int) CacheBackend { return core.NewLRUBackend(max) }

// WithCacheBackend routes the Runner's result memoization through a
// specific backend instead of the process-wide default — typically a
// file-backed cache shared with other processes running shards of the
// same sweep.
func WithCacheBackend(b CacheBackend) Option { return core.WithCacheBackend(b) }

// WithDeadlineSkipping enables or disables deadline-aware scheduling
// (default enabled): when the batch context carries a deadline, scenarios
// whose predicted cost (from the Runner's observed estimator timings)
// exceeds the remaining time are reported as skipped — wrapping
// ErrDeadlineSkipped, never cached — instead of being started and
// aborted.
func WithDeadlineSkipping(enabled bool) Option { return core.WithDeadlineSkipping(enabled) }

// ErrDeadlineSkipped marks scenarios refused by deadline-aware
// scheduling; match it with errors.Is on Result.Err.
var ErrDeadlineSkipped = core.ErrDeadlineSkipped

// ResetEstimateCache empties the process-wide default result cache. A
// Runner configured with its own backend via WithCacheBackend is
// unaffected — reset that one with Runner.ResetEstimateCache, which goes
// through whatever backend the Runner actually uses.
func ResetEstimateCache() { core.ResetEstimateCache() }
