package repro

import (
	"repro/internal/core"
)

// Scenario is one evaluation point of a batch: a named model configuration.
// A zero-valued Config means "use the Runner's base configuration"; for a
// variation on the base, copy Runner.BaseConfig and modify it:
//
//	c := runner.BaseConfig()
//	c.PDT = 0.3
//	s := repro.Scenario{Name: "PDT=0.3", Config: c}
type Scenario = core.Scenario

// Result is the outcome of one scenario: the scenario's index in the batch,
// its effective seed, one Estimate per estimator, or an error.
type Result = core.Result

// Runner evaluates batches of scenarios across a fixed estimator set with a
// bounded worker pool. Construct it with New; a Runner is safe for
// concurrent use and reusable across batches. RunBatch streams results in
// completion order with context cancellation; RunAll collects them in input
// order.
type Runner = core.Runner

// Option configures a Runner under construction; see WithConfig, WithSeed,
// WithParallelism, WithEstimators and WithMethods.
type Option = core.RunnerOption

// New builds a Runner from functional options.
func New(opts ...Option) (*Runner, error) { return core.NewRunner(opts...) }

// WithConfig sets the base model configuration (default PaperConfig).
func WithConfig(cfg Config) Option { return core.WithConfig(cfg) }

// WithSeed sets the master seed from which every scenario's RNG seed is
// derived (default: the base configuration's seed). Two Runners with equal
// seeds produce bit-identical results for equal batches, at any parallelism.
func WithSeed(seed uint64) Option { return core.WithSeed(seed) }

// WithParallelism bounds the number of scenarios evaluated concurrently
// (default runtime.GOMAXPROCS(0); 1 forces sequential execution).
func WithParallelism(n int) Option { return core.WithParallelism(n) }

// WithEstimators sets the estimator list (default Methods(), the paper's
// three in presentation order).
func WithEstimators(ests ...Estimator) Option { return core.WithEstimators(ests...) }

// WithMethods resolves estimators by registered name through the registry,
// e.g. WithMethods("sim", "markov", "erlang32").
func WithMethods(specs ...string) Option { return core.WithMethods(specs...) }

// WithCache enables or disables result memoization (default enabled): a
// scenario whose effective configuration and estimator name match a
// previously computed result returns the cached Estimate instead of
// re-running the estimator. Disable it for estimators whose Name does not
// uniquely identify a pure function of the Config.
func WithCache(enabled bool) Option { return core.WithCache(enabled) }

// WithSeedDerivation enables or disables per-scenario seed derivation
// (default enabled). Disable it for fixed-seed experiments where every
// scenario must run with its Config.Seed exactly as given — the contract
// of the extension experiments and CompareAll.
func WithSeedDerivation(enabled bool) Option { return core.WithSeedDerivation(enabled) }

// ResetEstimateCache empties the process-wide result cache.
func ResetEstimateCache() { core.ResetEstimateCache() }
