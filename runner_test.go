// Tests of the public Runner API: the estimator registry, batch execution
// with cancellation, and seed-stable determinism at any parallelism.
package repro_test

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// ---------------------------------------------------------------------------
// Registry

func TestRegistryResolvesPaperMethods(t *testing.T) {
	for spec, want := range map[string]string{
		"sim":        "Simulation",
		"Simulation": "Simulation",
		"markov":     "Markov",
		"petri":      "PetriNet",
		"pn":         "PetriNet",
		"erlang":     "ErlangMarkov(K=16)",
		"erlang8":    "ErlangMarkov(K=8)",
	} {
		est, err := repro.NewEstimator(spec)
		if err != nil {
			t.Fatalf("NewEstimator(%q): %v", spec, err)
		}
		if est.Name() != want {
			t.Errorf("NewEstimator(%q).Name() = %q, want %q", spec, est.Name(), want)
		}
	}
	names := repro.MethodNames()
	if len(names) < 4 {
		t.Fatalf("MethodNames() = %v, want at least the paper's three + erlang", names)
	}
}

func TestRegistryRejectsUnknownAndBadSpecs(t *testing.T) {
	for _, spec := range []string{"quantum", "", "erlang0", "erlangx", "sim3"} {
		if _, err := repro.NewEstimator(spec); err == nil {
			t.Errorf("NewEstimator(%q) unexpectedly succeeded", spec)
		}
	}
	if _, err := repro.NewEstimator("quantum"); err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("unknown-method error missing: %v", err)
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	factory := func(arg string) (repro.Estimator, error) { return repro.Markov{}, nil }
	if err := repro.Register("runner-test-method", factory, "rtm"); err != nil {
		t.Fatalf("first Register: %v", err)
	}
	if err := repro.Register("runner-test-method", factory); err == nil {
		t.Fatal("duplicate canonical name accepted")
	}
	if err := repro.Register("runner-test-other", factory, "rtm"); err == nil {
		t.Fatal("duplicate alias accepted")
	}
	if err := repro.Register("sim", factory); err == nil {
		t.Fatal("shadowing a built-in alias accepted")
	}
	if err := repro.Register("nil-factory", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if err := repro.Register("Same-Call", factory, "same-call"); err == nil {
		t.Fatal("same-call name/alias collision accepted")
	}
	// The registered method is resolvable by name and alias.
	if _, err := repro.NewEstimator("rtm"); err != nil {
		t.Fatalf("alias lookup after Register: %v", err)
	}
	// A registered name containing digits resolves exactly, without being
	// split into name+argument.
	if err := repro.Register("method2", factory); err != nil {
		t.Fatalf("digit-bearing name rejected: %v", err)
	}
	if _, err := repro.NewEstimator("method2"); err != nil {
		t.Fatalf("digit-bearing name unresolvable: %v", err)
	}
}

// ---------------------------------------------------------------------------
// Runner construction

func TestNewValidatesOptions(t *testing.T) {
	if _, err := repro.New(repro.WithParallelism(-1)); err == nil {
		t.Error("negative parallelism accepted")
	}
	if _, err := repro.New(repro.WithEstimators()); err == nil {
		t.Error("empty estimator list accepted")
	}
	if _, err := repro.New(repro.WithMethods("nope")); err == nil {
		t.Error("unknown method spec accepted")
	}
	bad := repro.PaperConfig()
	bad.Lambda = 50 // rho >= 1
	if _, err := repro.New(repro.WithConfig(bad)); err == nil || !strings.Contains(err.Error(), "unstable") {
		t.Errorf("unstable base config accepted: %v", err)
	}
}

func TestScenarioInheritsBaseConfig(t *testing.T) {
	cfg := repro.PaperConfig()
	cfg.SimTime = 120
	cfg.Warmup = 10
	cfg.Replications = 2
	runner, err := repro.New(repro.WithConfig(cfg), repro.WithMethods("markov"))
	if err != nil {
		t.Fatal(err)
	}
	// A zero Config means "the base config, exactly".
	res, err := runner.Run(context.Background(), repro.Scenario{Name: "inherited"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 1 || res.Estimates[0].Method != "Markov" {
		t.Fatalf("unexpected estimates: %+v", res.Estimates)
	}
	if res.Seed == cfg.Seed {
		t.Error("scenario seed was not derived from the master seed")
	}
	// Variations copy BaseConfig; PDT=0 must survive as a real value and
	// not be silently replaced by the base PDT of 0.5 (always-sleep uses
	// strictly less energy than the 0.5 s timeout).
	c := runner.BaseConfig()
	c.PDT = 0
	zero, err := runner.Run(context.Background(), repro.Scenario{Name: "PDT=0", Config: c})
	if err != nil {
		t.Fatal(err)
	}
	if zero.Estimates[0].EnergyJ >= res.Estimates[0].EnergyJ {
		t.Fatalf("PDT=0 energy %v >= base PDT energy %v — zero knob was dropped",
			zero.Estimates[0].EnergyJ, res.Estimates[0].EnergyJ)
	}
	// A partially filled Config is ambiguous and must be rejected loudly,
	// not silently patched with base values.
	var partial repro.Scenario
	partial.Config.PDT = 0.25 // Lambda unset
	if _, err := runner.Run(context.Background(), partial); err == nil ||
		!strings.Contains(err.Error(), "partial scenario config") {
		t.Fatalf("partial config not rejected: %v", err)
	}
}

// ---------------------------------------------------------------------------
// Batch execution

// slowEstimator blocks long enough for cancellation to land mid-batch and
// counts how many estimates actually ran. It implements only the legacy
// (context-free) estimator shape and is upgraded with repro.AdaptEstimator
// below, which doubles as coverage for the compatibility shim.
type slowEstimator struct {
	delay time.Duration
	runs  *atomic.Int64
}

func (s slowEstimator) Name() string { return "Slow" }

func (s slowEstimator) Estimate(cfg repro.Config) (*repro.Estimate, error) {
	time.Sleep(s.delay)
	s.runs.Add(1)
	return &repro.Estimate{Method: "Slow", EnergyJ: float64(cfg.Seed % 1000)}, nil
}

func TestRunBatchCancellationMidSweep(t *testing.T) {
	var runs atomic.Int64
	// The batch repeats one configuration on purpose; disable memoization
	// so every scenario actually exercises the (slow) estimator and
	// cancellation can land mid-batch.
	runner, err := repro.New(
		repro.WithParallelism(2),
		repro.WithCache(false),
		repro.WithEstimators(repro.AdaptEstimator(slowEstimator{delay: 20 * time.Millisecond, runs: &runs})),
	)
	if err != nil {
		t.Fatal(err)
	}
	const total = 40
	scenarios := make([]repro.Scenario, total)
	for i := range scenarios {
		scenarios[i] = repro.Scenario{Name: fmt.Sprintf("s%d", i)}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := runner.RunBatch(ctx, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for res := range ch {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		got++
		if got == 4 {
			cancel()
		}
	}
	// The channel must close promptly after cancellation with most of the
	// batch never emitted (a couple of in-flight scenarios may still land).
	if got >= total/2 {
		t.Fatalf("cancellation ineffective: %d of %d results delivered", got, total)
	}
	if runs.Load() >= total {
		t.Fatalf("all scenarios ran despite cancellation")
	}

	// RunAll surfaces the cancellation as an error.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if _, err := runner.RunAll(ctx2, scenarios); err == nil {
		t.Fatal("RunAll ignored context cancellation")
	}
}

func TestRunBatchEmptyAndOrdering(t *testing.T) {
	runner, err := repro.New(repro.WithMethods("markov"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	results, err := runner.RunAll(ctx, nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: %v, %v", results, err)
	}
	scenarios := make([]repro.Scenario, 7)
	for i := range scenarios {
		c := runner.BaseConfig()
		c.PDT = 0.1 * float64(i)
		scenarios[i] = repro.Scenario{Config: c}
	}
	results, err = runner.RunAll(ctx, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Index != i {
			t.Fatalf("RunAll order broken: results[%d].Index = %d", i, res.Index)
		}
	}
}

func TestRunBatchSurfacesScenarioErrors(t *testing.T) {
	runner, err := repro.New(repro.WithMethods("markov"))
	if err != nil {
		t.Fatal(err)
	}
	bad := repro.PaperConfig()
	bad.Lambda, bad.Mu = 20, 10 // unstable queue
	_, err = runner.RunAll(context.Background(), []repro.Scenario{{Name: "bad", Config: bad}})
	if err == nil || !strings.Contains(err.Error(), "unstable") {
		t.Fatalf("scenario validation error not surfaced: %v", err)
	}
}

// TestRunAllAbandonsBatchOnFirstError: once a scenario fails, RunAll must
// not burn compute finishing the rest of a large batch.
func TestRunAllAbandonsBatchOnFirstError(t *testing.T) {
	var runs atomic.Int64
	runner, err := repro.New(
		repro.WithParallelism(1),
		repro.WithEstimators(repro.AdaptEstimator(slowEstimator{delay: time.Millisecond, runs: &runs})),
	)
	if err != nil {
		t.Fatal(err)
	}
	const total = 50
	bad := repro.PaperConfig()
	bad.Lambda, bad.Mu = 20, 10 // fails Validate instantly
	scenarios := make([]repro.Scenario, total)
	for i := range scenarios {
		scenarios[i] = repro.Scenario{Name: fmt.Sprintf("s%d", i)}
	}
	scenarios[2] = repro.Scenario{Name: "bad", Config: bad}
	_, err = runner.RunAll(context.Background(), scenarios)
	if err == nil || !strings.Contains(err.Error(), "unstable") {
		t.Fatalf("expected the bad scenario's error, got: %v", err)
	}
	if n := runs.Load(); n >= total-1 {
		t.Fatalf("RunAll ran %d scenarios after an early failure", n)
	}
}

// TestRunBatchDeterministicAtAnyParallelism is the determinism contract:
// identical seeds produce bit-identical estimates whether the batch runs on
// one worker or many.
func TestRunBatchDeterministicAtAnyParallelism(t *testing.T) {
	cfg := repro.PaperConfig()
	cfg.SimTime = 150
	cfg.Warmup = 15
	cfg.Replications = 2

	run := func(parallelism int) []repro.Result {
		t.Helper()
		// Memoization off: with the cache on, the second run would be
		// answered from the first run's entries and the worker pool would
		// never be exercised.
		runner, err := repro.New(
			repro.WithConfig(cfg),
			repro.WithSeed(424242),
			repro.WithParallelism(parallelism),
			repro.WithCache(false),
			repro.WithMethods("sim", "petrinet", "markov"),
		)
		if err != nil {
			t.Fatal(err)
		}
		scenarios := make([]repro.Scenario, 8)
		for i := range scenarios {
			c := cfg
			c.PDT = 0.125 * float64(i)
			scenarios[i] = repro.Scenario{Name: fmt.Sprintf("PDT=%g", c.PDT), Config: c}
		}
		results, err := runner.RunAll(context.Background(), scenarios)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}

	seq := run(1)
	par := run(8)
	for i := range seq {
		if seq[i].Seed != par[i].Seed {
			t.Fatalf("scenario %d: seed %d (sequential) != %d (parallel)", i, seq[i].Seed, par[i].Seed)
		}
		for ei := range seq[i].Estimates {
			a, b := seq[i].Estimates[ei], par[i].Estimates[ei]
			if a.EnergyJ != b.EnergyJ || a.Fractions != b.Fractions || a.MeanJobs != b.MeanJobs {
				t.Fatalf("scenario %d estimator %s: sequential %+v != parallel %+v",
					i, a.Method, a, b)
			}
		}
	}
}
