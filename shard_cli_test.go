// End-to-end test of the sharded sweep pipeline, exercised exactly the way
// an operator would run it: `wsnenergy shard plan|run|merge` across two
// worker processes sharing a file-backed result cache, asserted
// byte-identical against the single-process artifacts.
package repro_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// shardPipeline plans an experiment into two shards, runs both worker
// processes against a shared cache directory, merges, and returns the
// merged artifact.
func shardPipeline(t *testing.T, experiment string, modelFlags ...string) string {
	t.Helper()
	dir := t.TempDir()
	plan := filepath.Join(dir, "plan.json")
	cache := filepath.Join(dir, "cache")
	r0 := filepath.Join(dir, "r0.json")
	r1 := filepath.Join(dir, "r1.json")

	planOut := runCLI(t, "wsnenergy", append([]string{"shard", "plan",
		"-experiment", experiment, "-shards", "2", "-out", plan}, modelFlags...)...)
	if !strings.Contains(planOut, "2 shards") {
		t.Fatalf("plan output unexpected: %s", planOut)
	}
	runCLI(t, "wsnenergy", "shard", "run", "-plan", plan, "-shard", "0", "-cache", cache, "-out", r0)
	runCLI(t, "wsnenergy", "shard", "run", "-plan", plan, "-shard", "1", "-cache", cache, "-out", r1)

	// The shared cache must actually be shared: entries from both workers
	// land in one directory.
	entries, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("shard workers left the shared cache empty")
	}
	return runCLI(t, "wsnenergy", "shard", "merge", "-plan", plan, "-format", "csv", r0, r1)
}

// TestShardPipelineTable4 is the acceptance test of the sharding
// subsystem: a Table 4 sweep split across 2 shard processes with a shared
// file-backed cache merges byte-identical to the single-process output.
func TestShardPipelineTable4(t *testing.T) {
	flags := []string{"-simtime", "100", "-reps", "2"}
	single := runCLI(t, "wsnenergy", append([]string{"-experiment", "table4", "-format", "csv"}, flags...)...)
	merged := shardPipeline(t, "table4", flags...)
	if merged != single {
		t.Fatalf("merged Table 4 differs from single-process run:\n--- single ---\n%s\n--- merged ---\n%s", single, merged)
	}
}

// TestShardPipelineFig5 covers the figure path (Figure 4 and 5 share the
// same grid and machinery; Figure 5's CSV is the cheaper assertion).
func TestShardPipelineFig5(t *testing.T) {
	flags := []string{"-simtime", "100", "-reps", "2"}
	single := runCLI(t, "wsnenergy", append([]string{"-experiment", "fig5", "-format", "csv"}, flags...)...)
	merged := shardPipeline(t, "fig5", flags...)
	if merged != single {
		t.Fatalf("merged Figure 5 differs from single-process run:\n--- single ---\n%s\n--- merged ---\n%s", single, merged)
	}
}

// TestShardPlanRejectsNonSweep: only the grid artifacts are shardable.
func TestShardPlanRejectsNonSweep(t *testing.T) {
	out := runCLIExpectError(t, "wsnenergy", "shard", "plan", "-experiment", "table1")
	if !strings.Contains(out, "not a shardable sweep") {
		t.Fatalf("missing shardability error:\n%s", out)
	}
}

// TestShardRunRejectsBadIndex: asking for a shard outside the plan fails
// with a clear message.
func TestShardRunRejectsBadIndex(t *testing.T) {
	dir := t.TempDir()
	plan := filepath.Join(dir, "plan.json")
	runCLI(t, "wsnenergy", "shard", "plan", "-experiment", "fig5", "-shards", "2",
		"-simtime", "100", "-reps", "1", "-out", plan)
	out := runCLIExpectError(t, "wsnenergy", "shard", "run", "-plan", plan, "-shard", "9")
	if !strings.Contains(out, "no shard 9") {
		t.Fatalf("missing shard-index error:\n%s", out)
	}
}

// TestShardMergeDetectsMissingShard: merging only half the result sets
// must fail as incomplete rather than render a partial table.
func TestShardMergeDetectsMissingShard(t *testing.T) {
	dir := t.TempDir()
	plan := filepath.Join(dir, "plan.json")
	r0 := filepath.Join(dir, "r0.json")
	runCLI(t, "wsnenergy", "shard", "plan", "-experiment", "fig5", "-shards", "2",
		"-simtime", "100", "-reps", "1", "-out", plan)
	runCLI(t, "wsnenergy", "shard", "run", "-plan", plan, "-shard", "0", "-out", r0)
	out := runCLIExpectError(t, "wsnenergy", "shard", "merge", "-plan", plan, r0)
	if !strings.Contains(out, "incomplete") {
		t.Fatalf("missing incompleteness error:\n%s", out)
	}
}
