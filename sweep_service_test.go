// Fault-injection test of the sweep service: coordinator plus a worker
// fleet, exercised exactly the way an operator would run it — except one
// worker is SIGKILLed while it provably holds a lease. The merged output
// must still be byte-identical to a single-process run, the lease expiry
// and requeue counters must show the recovery actually happened, and a
// repeat sweep must be served from the coordinator-hosted result cache.
package repro_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/sweepd"
)

// reducedFlags sizes the sweeps for CI without changing their structure.
var reducedFlags = []string{"-simtime", "100", "-reps", "2"}

// buildWsnenergy compiles the real binary. `go run` would put a wrapper
// process between us and the worker, so SIGKILL on the child would orphan
// the actual victim instead of killing it.
func buildWsnenergy(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "wsnenergy")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/wsnenergy")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building wsnenergy: %v\n%s", err, out)
	}
	return bin
}

// startCoordinator launches `wsnenergy serve` on an ephemeral port and
// returns the announced base URL.
func startCoordinator(t *testing.T, bin string, extraArgs ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"serve", "-listen", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("coordinator announced nothing: %v", err)
	}
	url := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "listening on "))
	if !strings.HasPrefix(url, "http://") {
		t.Fatalf("unexpected coordinator announcement: %q", line)
	}
	return cmd, url
}

// startWorker launches `wsnenergy work` joined to the coordinator.
func startWorker(t *testing.T, bin, url, name string, extraArgs ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{"work", "-join", url, "-name", name}, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	return cmd
}

// runBinary runs the built binary and returns stdout.
func runBinary(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v", bin, args, err)
	}
	return stdout.String()
}

// holdsLease reports whether the named worker currently holds a lease.
func holdsLease(st sweepd.CoordinatorStatus, worker string) bool {
	for _, l := range st.Leases {
		if l.Worker == worker {
			return true
		}
	}
	return false
}

// TestSweepServiceFaultInjection is the acceptance test of the sweep
// service (run in CI as its own job):
//
//  1. a coordinator with a 2 s lease TTL and one slow worker start; a
//     Table 4 sweep is submitted;
//  2. the worker is SIGSTOPped, the coordinator's status is consulted, and
//     only if the frozen worker provably holds a lease is it SIGKILLed —
//     an airtight mid-lease crash (otherwise it is resumed and probed
//     again);
//  3. two replacement workers join; the coordinator expires the dead
//     worker's lease, requeues, and the sweep completes;
//  4. the rendered table must be byte-identical to the single-process run,
//     and the coordinator must report the expiry and requeue;
//  5. a Figure 5 sweep then runs twice on the surviving fleet; the repeat
//     must be served from the coordinator-hosted remote result cache.
func TestSweepServiceFaultInjection(t *testing.T) {
	bin := buildWsnenergy(t)
	singleTable4 := runBinary(t, bin, append([]string{"-experiment", "table4", "-format", "csv"}, reducedFlags...)...)
	singleFig5 := runBinary(t, bin, append([]string{"-experiment", "fig5", "-format", "csv"}, reducedFlags...)...)

	_, url := startCoordinator(t, bin, "-lease", "2s", "-partitions", "6")
	client, err := sweepd.NewClient(url, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The victim runs alone and single-threaded so it is guaranteed to
	// still be mid-lease when we come for it.
	victim := startWorker(t, bin, url, "victim", "-parallel", "1")

	sweepArgs := func(experiment string) []string {
		return append([]string{"sweep", "-join", url, "-experiment", experiment,
			"-format", "csv", "-poll", "100ms", "-timeout", "5m"}, reducedFlags...)
	}
	sweepCmd := exec.Command(bin, sweepArgs("table4")...)
	var sweepOut bytes.Buffer
	sweepCmd.Stdout = &sweepOut
	sweepCmd.Stderr = os.Stderr
	if err := sweepCmd.Start(); err != nil {
		t.Fatal(err)
	}
	sweepDone := make(chan error, 1)
	go func() { sweepDone <- sweepCmd.Wait() }()

	// Freeze the victim, check it holds a lease, and only then kill it.
	// SIGSTOP makes the check race-free: a frozen worker cannot submit
	// results between the status read and the SIGKILL.
	pid := victim.Process.Pid
	killed := false
	for i := 0; i < 500 && !killed; i++ {
		select {
		case err := <-sweepDone:
			t.Fatalf("sweep finished before the victim could be killed mid-lease (err=%v)", err)
		default:
		}
		if err := syscall.Kill(pid, syscall.SIGSTOP); err != nil {
			t.Fatalf("SIGSTOP: %v", err)
		}
		st, err := client.Status()
		if err == nil && holdsLease(st, "victim") {
			if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
				t.Fatalf("SIGKILL: %v", err)
			}
			killed = true
			break
		}
		if err := syscall.Kill(pid, syscall.SIGCONT); err != nil {
			t.Fatalf("SIGCONT: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !killed {
		t.Fatal("never caught the victim holding a lease")
	}
	t.Log("victim killed while holding a lease")

	// Replacements join; the coordinator must expire the dead lease,
	// requeue the partition, and finish the sweep.
	startWorker(t, bin, url, "w2", "-parallel", "2")
	startWorker(t, bin, url, "w3", "-parallel", "2")
	if err := <-sweepDone; err != nil {
		t.Fatalf("sweep failed after worker loss: %v", err)
	}
	if got := sweepOut.String(); got != singleTable4 {
		t.Fatalf("recovered Table 4 differs from single-process run:\n--- single ---\n%s\n--- service ---\n%s", singleTable4, got)
	}
	st, err := client.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.ExpiredLeases < 1 {
		t.Fatalf("no lease expiry recorded after SIGKILL: %+v", st)
	}
	if st.Requeues < 1 {
		t.Fatalf("no requeue recorded after SIGKILL: %+v", st)
	}
	t.Logf("recovery stats: %d expired leases, %d requeues, %d replans",
		st.ExpiredLeases, st.Requeues, st.Replans)

	// Figure 5 on the surviving fleet, twice: identical bytes both times,
	// and the repeat must hit the coordinator's remote result cache.
	first := runBinary(t, bin, sweepArgs("fig5")...)
	if first != singleFig5 {
		t.Fatalf("service Figure 5 differs from single-process run:\n--- single ---\n%s\n--- service ---\n%s", singleFig5, first)
	}
	hitsBefore := cacheHits(t, url)
	again := runBinary(t, bin, sweepArgs("fig5")...)
	if again != singleFig5 {
		t.Fatalf("repeat Figure 5 differs:\n--- single ---\n%s\n--- service ---\n%s", singleFig5, again)
	}
	if hitsAfter := cacheHits(t, url); hitsAfter <= hitsBefore {
		t.Fatalf("repeat sweep did not hit the remote cache (hits %d -> %d)", hitsBefore, hitsAfter)
	}
}

// TestSweepServiceCoordinatorCrashRecovery is the durability acceptance
// test: the coordinator itself is SIGKILLed mid-sweep and a replacement
// process must recover the sweep from the write-ahead journal in
// -state-dir:
//
//  1. a durable coordinator and one single-threaded worker start; a
//     Table 4 sweep is submitted with -detach, which prints the sweep id
//     used to re-attach after the crash;
//  2. the worker is SIGSTOPped and, once the sweep is provably mid-flight
//     (some partitions accepted, some still queued), SIGTERMed — the
//     graceful-drain path: it finishes its current lease, submits, and
//     exits, so the journal and the shared cache hold exactly the
//     accepted scenarios;
//  3. the coordinator is SIGKILLed — no clean-shutdown record, the
//     journal tail is whatever fsync left behind;
//  4. a replacement coordinator on the same -state-dir must replay to
//     exactly the pre-crash progress, re-plan only the missing
//     scenarios, and report ready;
//  5. a relief worker joins, `sweep -attach` waits the recovered sweep
//     out, and the rendered table must be byte-identical to the
//     single-process run — with the cache hit counter still at zero,
//     proving no completed scenario was ever looked up again, let alone
//     re-executed.
func TestSweepServiceCoordinatorCrashRecovery(t *testing.T) {
	bin := buildWsnenergy(t)
	golden := runBinary(t, bin, append([]string{"-experiment", "table4", "-format", "csv"}, reducedFlags...)...)

	stateDir := filepath.Join(t.TempDir(), "state")
	serveArgs := []string{"-state-dir", stateDir, "-lease", "2s", "-partitions", "6", "-speculate=false"}
	coord, url := startCoordinator(t, bin, serveArgs...)
	client, err := sweepd.NewClient(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, client)

	worker := startWorker(t, bin, url, "first-shift", "-parallel", "1")
	submitArgs := append([]string{"sweep", "-join", url, "-experiment", "table4", "-detach"}, reducedFlags...)
	id := strings.TrimSpace(runBinary(t, bin, submitArgs...))
	if id == "" {
		t.Fatal("detached submit printed no sweep id")
	}

	// Freeze the worker so progress cannot change under the status read,
	// and ask for its graceful drain only when the sweep is provably
	// mid-flight: completed partitions in the journal, untouched ones
	// still queued. The SIGTERM is delivered on SIGCONT; the worker
	// finishes its current lease, submits it, and exits, and the queued
	// partitions guarantee the sweep stays unfinished.
	pid := worker.Process.Pid
	drained := false
	for i := 0; i < 500 && !drained; i++ {
		if err := syscall.Kill(pid, syscall.SIGSTOP); err != nil {
			t.Fatalf("SIGSTOP: %v", err)
		}
		st, err := client.SweepStatus(id)
		if err == nil && st.Completed > 0 && st.Queued > 0 {
			if err := syscall.Kill(pid, syscall.SIGTERM); err != nil {
				t.Fatalf("SIGTERM: %v", err)
			}
			drained = true
		}
		if err := syscall.Kill(pid, syscall.SIGCONT); err != nil {
			t.Fatalf("SIGCONT: %v", err)
		}
		if !drained {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if !drained {
		t.Fatal("never caught the sweep mid-flight")
	}
	_ = worker.Wait()

	st, err := client.SweepStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Leased != 0 || st.Completed == 0 || st.Completed >= st.Total {
		t.Fatalf("unexpected pre-crash state after worker drain: %+v", st)
	}
	progress := st.Completed
	t.Logf("crashing coordinator at %d/%d completed scenarios", progress, st.Total)
	if err := coord.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL coordinator: %v", err)
	}
	_ = coord.Wait()

	// The replacement coordinator replays the journal from the same
	// state directory: exactly the pre-crash progress, only the missing
	// scenarios re-planned (a requeue it must report), nothing leased.
	_, url2 := startCoordinator(t, bin, serveArgs...)
	client2, err := sweepd.NewClient(url2, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, client2)
	st, err = client2.SweepStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != sweepd.StateRunning {
		t.Fatalf("recovered sweep state = %q, want %q: %+v", st.State, sweepd.StateRunning, st)
	}
	if st.Completed != progress {
		t.Fatalf("replayed progress = %d scenarios, want exactly %d", st.Completed, progress)
	}
	if st.Queued == 0 {
		t.Fatalf("recovery queued nothing for the missing scenarios: %+v", st)
	}
	fleet, err := client2.Status()
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Requeues < 1 {
		t.Fatalf("recovery reported no requeue for the missing scenarios: %+v", fleet)
	}
	// The file-backed cache survived the crash holding exactly the
	// accepted scenarios. The hit counter must stay at zero from here on:
	// recovery re-plans only missing indices, so no completed scenario is
	// ever looked up again — let alone re-executed.
	if hits := cacheHits(t, url2); hits != 0 {
		t.Fatalf("restarted coordinator cache already reports %d hits", hits)
	}

	startWorker(t, bin, url2, "relief", "-parallel", "2")
	attachArgs := append([]string{"sweep", "-join", url2, "-experiment", "table4",
		"-format", "csv", "-poll", "100ms", "-timeout", "5m", "-attach", id}, reducedFlags...)
	if got := runBinary(t, bin, attachArgs...); got != golden {
		t.Fatalf("recovered Table 4 differs from single-process run:\n--- single ---\n%s\n--- recovered ---\n%s", golden, got)
	}
	if hits := cacheHits(t, url2); hits != 0 {
		t.Fatalf("completed scenarios were re-looked-up after recovery: %d cache hits", hits)
	}
}

// waitReady polls /v1/readyz until the coordinator finishes journal replay.
func waitReady(t *testing.T, client *sweepd.Client) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !client.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// cacheHits reads the server-side hit counter of the coordinator-hosted
// result cache (the raw /stats endpoint; the client-side backend's Stats
// reports its own local hits instead).
func cacheHits(t *testing.T, url string) uint64 {
	t.Helper()
	resp, err := http.Get(url + sweepd.CachePath + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Entries int    `json:"entries"`
		Hits    uint64 `json:"hits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Entries == 0 {
		t.Fatal("coordinator cache is empty after a completed sweep")
	}
	return stats.Hits
}
